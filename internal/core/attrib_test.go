package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// attribProblems spans the attribution modes: micro problems driving the
// port-integration path (stalled and slack variants, both combine modes,
// rigid keep-out via a single-buffered Reg) plus searched mappings on the
// paper's preset architectures.
func attribProblems(t *testing.T) map[string]*Problem {
	t.Helper()
	ps := map[string]*Problem{
		"micro-slack":      microProblem(64, 32, 24, false),
		"micro-starved":    microProblem(64, 4, 4, false),
		"micro-balanced":   microProblem(64, 32, 24, true),
		"micro-rigid":      microProblem(8, 64, 64, false),
		"micro-tight-regs": microProblem(6, 3, 3, false),
	}
	for name, a := range map[string]*arch.Arch{
		"inhouse": arch.InHouse(), "casestudy": arch.CaseStudy(),
	} {
		var sp loops.Nest
		if name == "inhouse" {
			sp = arch.InHouseSpatial()
		} else {
			sp = arch.CaseStudySpatial()
		}
		l := workload.NewMatMul("m", 32, 64, 64)
		spd := sp.DimProduct()
		var temporal loops.Nest
		for _, d := range []loops.Dim{loops.C, loops.B, loops.K} {
			if e := loops.CeilDiv(l.Dim(d), spd[d]); e > 1 {
				temporal = append(temporal, loops.Loop{Dim: d, Size: e})
			}
		}
		m := &mapping.Mapping{Spatial: sp, Temporal: temporal}
		if !assignBoundsTest(m, &l, a) {
			t.Fatalf("%s: bounds do not fit", name)
		}
		if err := m.Validate(&l, a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lc := l
		ps[name] = &Problem{Layer: &lc, Arch: a, Mapping: m}
	}
	return ps
}

// assignBoundsTest mirrors the mapper's greedy boundary assignment (the
// mapper package depends on core, so the helper is duplicated here in
// miniature).
func assignBoundsTest(m *mapping.Mapping, l *workload.Layer, a *arch.Arch) bool {
	n := len(m.Temporal)
	for _, op := range loops.AllOperands {
		chain := a.ChainMems(op)
		bounds := make([]int, len(chain))
		prev := 0
		for lev := range chain {
			if lev == len(chain)-1 {
				bounds[lev] = n
				break
			}
			capBits := chain[lev].MapperCapacityBits()
			bits := int64(l.Precision.Bits(op))
			b := prev
			m.Bound[op] = bounds
			bounds[lev] = b
			if m.MemData(op, lev, l.Strides)*bits > capBits {
				return false
			}
			for b < n {
				bounds[lev] = b + 1
				if m.MemData(op, lev, l.Strides)*bits > capBits {
					bounds[lev] = b
					break
				}
				b++
			}
			prev = bounds[lev]
		}
		m.Bound[op] = bounds
	}
	return true
}

// TestAttributeSumsToSSOverall is the attribution invariant: for every mode
// the per-memory contributions sum to the reported SS_overall exactly (no
// epsilon — the decomposition replays the integration's own float
// arithmetic), and in rigid mode the unit stalls do too.
func TestAttributeSumsToSSOverall(t *testing.T) {
	modes := map[AttribMode]bool{}
	for name, p := range attribProblems(t) {
		t.Run(name, func(t *testing.T) {
			r := mustEval(t, p)
			at := Attribute(p, r)
			modes[at.Mode] = true

			var sum float64
			for _, mc := range at.Mems {
				sum += mc.Contribution
			}
			if sum != r.SSOverall {
				t.Errorf("mode %s: Σ contributions = %v, want SS_overall %v (exact)",
					at.Mode, sum, r.SSOverall)
			}
			if at.Mode == AttribNone && r.SSOverall != 0 {
				t.Errorf("AttribNone with SS_overall %v", r.SSOverall)
			}
			if at.Mode == AttribRigid {
				var rsum float64
				for _, u := range at.Rigid {
					rsum += u.SS
					if u.MemName == "" {
						t.Errorf("rigid unit %s@L%d has no resolved module", u.Operand, u.Level)
					}
				}
				if rsum != r.SSOverall {
					t.Errorf("Σ rigid units = %v, want SS_overall %v", rsum, r.SSOverall)
				}
			}
			if at.Mode != AttribRigid && len(at.Rigid) != 0 {
				t.Errorf("mode %s carries rigid units", at.Mode)
			}
		})
	}
	// The fixture set must actually exercise the stalling paths, or the
	// invariant checks are vacuous.
	if !modes[AttribPorts] {
		t.Error("no fixture hit AttribPorts")
	}
	if !modes[AttribNone] {
		t.Error("no fixture hit AttribNone")
	}
}

// TestAttributeRigidMode pins the rigid path on a mapping of the paper's
// in-house accelerator where the keep-out accumulation is known to dominate
// the port integration (found by enumerating the bounded mapping space and
// checking rigidTotal > integrated): MatMul 32x64x64, temporal nest
// [K 2 | B 2 | C 32] innermost-first.
func TestAttributeRigidMode(t *testing.T) {
	a := arch.InHouse()
	l := workload.NewMatMul("m", 32, 64, 64)
	m := &mapping.Mapping{
		Spatial: arch.InHouseSpatial(),
		Temporal: loops.Nest{
			{Dim: loops.K, Size: 2}, {Dim: loops.B, Size: 2}, {Dim: loops.C, Size: 32},
		},
	}
	if !assignBoundsTest(m, &l, a) {
		t.Fatal("bounds do not fit")
	}
	p := &Problem{Layer: &l, Arch: a, Mapping: m}
	r := mustEval(t, p)
	at := Attribute(p, r)
	if at.RigidTotal <= at.Integrated {
		t.Fatalf("fixture not rigid-dominated (rigid %v <= integrated %v)", at.RigidTotal, at.Integrated)
	}
	if at.Mode != AttribRigid {
		t.Fatalf("mode = %s, want rigid", at.Mode)
	}
	if r.SSOverall != at.RigidTotal {
		t.Errorf("SS_overall %v != rigid total %v", r.SSOverall, at.RigidTotal)
	}
	var sumMem, sumUnit float64
	for _, mc := range at.Mems {
		sumMem += mc.Contribution
	}
	for _, u := range at.Rigid {
		sumUnit += u.SS
	}
	if sumMem != r.SSOverall || sumUnit != r.SSOverall {
		t.Errorf("Σ mems %v / Σ units %v, want SS_overall %v", sumMem, sumUnit, r.SSOverall)
	}
	if len(at.Rigid) < 2 {
		t.Errorf("rigid fixture has %d units; accumulation needs >= 2 to beat the max", len(at.Rigid))
	}
}

// TestAttributeConcurrentFirstArgmax pins the concurrent tie-break: with
// equal per-memory stalls the FIRST memory in canonical order carries the
// whole contribution, mirroring integrateValues' strict >.
func TestAttributeConcurrentFirstArgmax(t *testing.T) {
	for name, p := range attribProblems(t) {
		r := mustEval(t, p)
		at := Attribute(p, r)
		if at.Mode != AttribPorts || p.Arch.Combine != arch.Concurrent {
			continue
		}
		carriers := 0
		first := -1
		for i, mc := range at.Mems {
			if mc.Contribution != 0 {
				carriers++
				if first < 0 {
					first = i
				}
			}
		}
		if carriers != 1 {
			t.Errorf("%s: %d memories carry contribution under Concurrent, want exactly 1", name, carriers)
			continue
		}
		for i := 0; i < first; i++ {
			if at.Mems[i].SS >= at.Mems[first].SS {
				t.Errorf("%s: memory %d (SS %v) precedes carrier %d (SS %v) with >= stall",
					name, i, at.Mems[i].SS, first, at.Mems[first].SS)
			}
		}
	}
}
