package core_test

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// ExampleEvaluate prices a hand-written output-stationary mapping of a
// small matmul on the case-study accelerator.
func ExampleEvaluate() {
	layer := workload.NewMatMul("demo", 16, 32, 8)
	hw := arch.CaseStudy()

	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(), // K16 | B8 | C2
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 1, 3} // regs | W-LB=[C4] | GB
	m.Bound[loops.I] = []int{0, 2, 3}
	m.Bound[loops.O] = []int{1, 3} // O-Reg=[C4] (output stationary) | GB

	if err := m.Validate(&layer, hw); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	r, err := core.Evaluate(&core.Problem{Layer: &layer, Arch: hw, Mapping: m})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("compute %d cc, temporal stall %.0f cc, %s\n",
		r.CCSpatial, r.SSOverall, r.Scenario)
	// The tiny 16-cycle layer cannot amortize its 128-output drain
	// bursts over the 128 bit/cycle GB port: the stall dominates.
	// Output:
	// compute 16 cc, temporal stall 92 cc, scenario 3
}

// ExampleEvaluateBWUnaware contrasts the full model with the idealizing
// baseline on a bandwidth-starved configuration.
func ExampleEvaluateBWUnaware() {
	layer := workload.NewMatMul("demo", 16, 32, 8)
	hw := arch.CaseStudy()
	gb := hw.MemoryByName("GB")
	for i := range gb.Ports {
		gb.Ports[i].BWBits = 8 // starve the global buffer
	}
	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(),
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 1, 3}
	m.Bound[loops.I] = []int{0, 2, 3}
	m.Bound[loops.O] = []int{1, 3}

	p := &core.Problem{Layer: &layer, Arch: hw, Mapping: m}
	full, _ := core.Evaluate(p)
	ideal, _ := core.EvaluateBWUnaware(p)
	fmt.Printf("aware sees %.1fx the baseline's latency\n", full.CCTotal/ideal.CCTotal)
	// Output:
	// aware sees 3.3x the baseline's latency
}
