package core

import (
	"fmt"

	"repro/internal/periodic"
	"repro/internal/workload"
)

// PortStall is the Step-2 result for one physical memory port.
type PortStall struct {
	MemName  string
	PortIdx  int
	PortName string

	Endpoints []*Endpoint

	// ReqBWReadBits / ReqBWWriteBits are ReqBW_comb of the port with read
	// and write distinguished (Section III-C-1), in bits/cycle.
	ReqBWReadBits  float64
	ReqBWWriteBits float64
	// RealBWBits is the port's raw bandwidth.
	RealBWBits int64

	// MUWComb is the union of the endpoints' allowed-update windows.
	MUWComb float64
	// MUWExact reports whether MUWComb was computed exactly (see package
	// periodic; a fallback underestimates MUW_comb and hence can only
	// overestimate the stall).
	MUWExact bool

	// SSComb is the combined stall(+)/slack(-) of the port, per Eq. (1)/(2).
	SSComb float64
}

// combineEq applies the paper's Eq. (1) and Eq. (2) to a set of endpoint
// stalls sharing one physical port.
//
// Eq. (1) (all SS_u <= 0):  SS_comb = Σ(MUW_u + SS_u) − MUW_comb
// Eq. (2) (some SS_u > 0):  SS_comb = Σ_{SS_u>0} SS_u +
//
//	max(0, Σ_{SS_u<=0}(MUW_u + SS_u) − MUW_comb')
//
// where MUW_comb' is the union over the non-positive-stall endpoints only,
// so that slack from well-behaved links never cancels the stall that an
// overloaded link induces by itself.
//
// Eq. (2) alone under-counts one scenario: a link that individually stalls
// (SS_u > 0) occupies its whole window AND its overrun, so the port time it
// burns is unavailable to the other links even when those fit their own
// windows. The port-capacity bound — Eq. (1) applied to ALL links,
// Σ(X_REAL·Z) − MUW_comb — captures exactly that, so the combination takes
// the maximum of the two (both are lower bounds on the true stall; the
// reference simulator confirms the max tracks the machine).
func combineEq(eps []*Endpoint, opts ModelOptions, sc *combineScratch) (ssComb, muwAll float64, exact bool) {
	if sc == nil {
		sc = &combineScratch{}
	}
	if opts.NaiveCombine {
		muwAll, exact = unionMUW(eps, sc)
		var sum float64
		for _, e := range eps {
			sum += e.SSu // slack cancels stall: the idealization under test
		}
		return sum, muwAll, exact
	}
	pos := sc.pos[:0]
	nonpos := sc.nonpos[:0]
	var demand float64 // Σ X_REAL·Z over every link on the port
	for _, e := range eps {
		demand += e.MUW + e.SSu // MUW + SS_u = X_REAL * Z
		if e.SSu > 0 {
			pos = append(pos, e)
		} else {
			nonpos = append(nonpos, e)
		}
	}
	sc.pos, sc.nonpos = pos, nonpos // retain grown capacity across calls
	muwAll, exact = unionMUW(eps, sc)
	capacityBound := demand - muwAll
	if opts.NoCapacityBound {
		capacityBound = -1e18 // never selected: paper's Eq. (2) verbatim
	}
	if len(pos) == 0 {
		// Eq. (1) and the capacity bound coincide when no link stalls.
		var sum float64
		for _, e := range eps {
			sum += e.MUW + e.SSu
		}
		return sum - muwAll, muwAll, exact
	}
	var eq2 float64
	for _, e := range pos {
		eq2 += e.SSu
	}
	if len(nonpos) > 0 {
		muwNP, exNP := unionMUW(nonpos, sc)
		exact = exact && exNP
		var sum float64
		for _, e := range nonpos {
			sum += e.MUW + e.SSu
		}
		if rest := sum - muwNP; rest > 0 {
			eq2 += rest
		}
	}
	if capacityBound > eq2 {
		return capacityBound, muwAll, exact
	}
	return eq2, muwAll, exact
}

// combineScratch carries the reusable buffers of combineEq so that repeated
// Step-2 combinations allocate nothing beyond the periodic-union internals.
type combineScratch struct {
	windows     []periodic.Window
	union       periodic.UnionScratch
	pos, nonpos []*Endpoint
}

// unionMUW computes MUW_comb for a set of endpoints.
func unionMUW(eps []*Endpoint, sc *combineScratch) (float64, bool) {
	ws := sc.windows[:0]
	for _, e := range eps {
		ws = append(ws, e.Window)
	}
	sc.windows = ws
	u, exact := periodic.UnionWith(ws, &sc.union)
	return float64(u), exact
}

// MemStall is the per-memory-module combination: the maximum over the
// module's ports (ports operate concurrently within a module, so the longer
// port stall hides the shorter — Section III-C-2 final combination).
type MemStall struct {
	MemName string
	Ports   []*PortStall
	SS      float64
}

// describePort renders a one-line summary used by reports.
func describePort(ps *PortStall, prec workload.Precision) string {
	return fmt.Sprintf("%s.%s: ReqBW rd %.1f / wr %.1f bit/cc, RealBW %d bit/cc, MUW %.0f, SS %+.1f",
		ps.MemName, ps.PortName, ps.ReqBWReadBits, ps.ReqBWWriteBits, ps.RealBWBits, ps.MUWComb, ps.SSComb)
}
