package core

import (
	"fmt"
	"sort"

	"repro/internal/periodic"
	"repro/internal/workload"
)

// PortStall is the Step-2 result for one physical memory port.
type PortStall struct {
	MemName  string
	PortIdx  int
	PortName string

	Endpoints []*Endpoint

	// ReqBWReadBits / ReqBWWriteBits are ReqBW_comb of the port with read
	// and write distinguished (Section III-C-1), in bits/cycle.
	ReqBWReadBits  float64
	ReqBWWriteBits float64
	// RealBWBits is the port's raw bandwidth.
	RealBWBits int64

	// MUWComb is the union of the endpoints' allowed-update windows.
	MUWComb float64
	// MUWExact reports whether MUWComb was computed exactly (see package
	// periodic; a fallback underestimates MUW_comb and hence can only
	// overestimate the stall).
	MUWExact bool

	// SSComb is the combined stall(+)/slack(-) of the port, per Eq. (1)/(2).
	SSComb float64
}

// combineEq applies the paper's Eq. (1) and Eq. (2) to a set of endpoint
// stalls sharing one physical port.
//
// Eq. (1) (all SS_u <= 0):  SS_comb = Σ(MUW_u + SS_u) − MUW_comb
// Eq. (2) (some SS_u > 0):  SS_comb = Σ_{SS_u>0} SS_u +
//
//	max(0, Σ_{SS_u<=0}(MUW_u + SS_u) − MUW_comb')
//
// where MUW_comb' is the union over the non-positive-stall endpoints only,
// so that slack from well-behaved links never cancels the stall that an
// overloaded link induces by itself.
//
// Eq. (2) alone under-counts one scenario: a link that individually stalls
// (SS_u > 0) occupies its whole window AND its overrun, so the port time it
// burns is unavailable to the other links even when those fit their own
// windows. The port-capacity bound — Eq. (1) applied to ALL links,
// Σ(X_REAL·Z) − MUW_comb — captures exactly that, so the combination takes
// the maximum of the two (both are lower bounds on the true stall; the
// reference simulator confirms the max tracks the machine).
func combineEq(eps []*Endpoint, opts ModelOptions) (ssComb, muwAll float64, exact bool) {
	if opts.NaiveCombine {
		muwAll, exact = unionMUW(eps)
		var sum float64
		for _, e := range eps {
			sum += e.SSu // slack cancels stall: the idealization under test
		}
		return sum, muwAll, exact
	}
	var pos []*Endpoint
	var nonpos []*Endpoint
	var demand float64 // Σ X_REAL·Z over every link on the port
	for _, e := range eps {
		demand += e.MUW + e.SSu // MUW + SS_u = X_REAL * Z
		if e.SSu > 0 {
			pos = append(pos, e)
		} else {
			nonpos = append(nonpos, e)
		}
	}
	muwAll, exact = unionMUW(eps)
	capacityBound := demand - muwAll
	if opts.NoCapacityBound {
		capacityBound = -1e18 // never selected: paper's Eq. (2) verbatim
	}
	if len(pos) == 0 {
		// Eq. (1) and the capacity bound coincide when no link stalls.
		var sum float64
		for _, e := range eps {
			sum += e.MUW + e.SSu
		}
		return sum - muwAll, muwAll, exact
	}
	var eq2 float64
	for _, e := range pos {
		eq2 += e.SSu
	}
	if len(nonpos) > 0 {
		muwNP, exNP := unionMUW(nonpos)
		exact = exact && exNP
		var sum float64
		for _, e := range nonpos {
			sum += e.MUW + e.SSu
		}
		if rest := sum - muwNP; rest > 0 {
			eq2 += rest
		}
	}
	if capacityBound > eq2 {
		return capacityBound, muwAll, exact
	}
	return eq2, muwAll, exact
}

// unionMUW computes MUW_comb for a set of endpoints.
func unionMUW(eps []*Endpoint) (float64, bool) {
	ws := make([]periodic.Window, len(eps))
	for i, e := range eps {
		ws[i] = e.Window
	}
	u := periodic.UnionLength(ws)
	return float64(u), periodic.UnionExact(ws)
}

// combinePorts groups endpoints by physical port and applies Step 2,
// returning one PortStall per port that carries at least one DTL endpoint,
// in deterministic order.
func combinePorts(p *Problem, eps []*Endpoint) []*PortStall {
	type key struct {
		mem  string
		port int
	}
	groups := map[key][]*Endpoint{}
	var order []key
	for _, e := range eps {
		k := key{e.MemName, e.PortIdx}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].mem != order[j].mem {
			return order[i].mem < order[j].mem
		}
		return order[i].port < order[j].port
	})

	prec := p.Layer.Precision
	out := make([]*PortStall, 0, len(order))
	for _, k := range order {
		grp := groups[k]
		mem := p.Arch.MemoryByName(k.mem)
		ps := &PortStall{
			MemName:    k.mem,
			PortIdx:    k.port,
			PortName:   mem.Ports[k.port].Name,
			Endpoints:  grp,
			RealBWBits: mem.Ports[k.port].BWBits,
		}
		for _, e := range grp {
			if e.Access.Write {
				ps.ReqBWWriteBits += e.ReqBWBits(prec)
			} else {
				ps.ReqBWReadBits += e.ReqBWBits(prec)
			}
		}
		ps.SSComb, ps.MUWComb, ps.MUWExact = combineEq(grp, p.opts())
		out = append(out, ps)
	}
	return out
}

// MemStall is the per-memory-module combination: the maximum over the
// module's ports (ports operate concurrently within a module, so the longer
// port stall hides the shorter — Section III-C-2 final combination).
type MemStall struct {
	MemName string
	Ports   []*PortStall
	SS      float64
}

// combineMemories groups port stalls by memory module.
func combineMemories(ports []*PortStall) []*MemStall {
	var out []*MemStall
	byName := map[string]*MemStall{}
	for _, ps := range ports {
		ms, ok := byName[ps.MemName]
		if !ok {
			ms = &MemStall{MemName: ps.MemName}
			byName[ps.MemName] = ms
			out = append(out, ms)
		}
		ms.Ports = append(ms.Ports, ps)
	}
	for _, ms := range out {
		first := true
		for _, ps := range ms.Ports {
			if first || ps.SSComb > ms.SS {
				ms.SS = ps.SSComb
				first = false
			}
		}
	}
	return out
}

// describePort renders a one-line summary used by reports.
func describePort(ps *PortStall, prec workload.Precision) string {
	return fmt.Sprintf("%s.%s: ReqBW rd %.1f / wr %.1f bit/cc, RealBW %d bit/cc, MUW %.0f, SS %+.1f",
		ps.MemName, ps.PortName, ps.ReqBWReadBits, ps.ReqBWWriteBits, ps.RealBWBits, ps.MUWComb, ps.SSComb)
}
