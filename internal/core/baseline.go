package core

// EvaluateBWUnaware runs the memory-bandwidth-UNAWARE baseline model used
// for comparison in paper Fig. 7(b) (the dotted "w/o temporal stall" line)
// and Fig. 8(a): identical to the full model except that every temporal
// stall is assumed away (the double-buffered / multi-ported idealization
// the paper criticizes in Section I). Pre-loading, spatial stall and the
// offload tail are still counted, since prior models include them.
func EvaluateBWUnaware(p *Problem) (*Result, error) {
	r, err := Evaluate(p)
	if err != nil {
		return nil, err
	}
	out := *r
	out.SSOverall = 0
	out.SSRaw = 0
	out.CCTotal = float64(r.CCSpatial) + r.Preload + r.Offload
	out.Utilization = out.CCIdeal / out.CCTotal
	out.TemporalUtilization = 1
	if out.SpatialStall <= 0.5 {
		out.Scenario = Scenario1
	} else {
		out.Scenario = Scenario2
	}
	return &out, nil
}
