package core

// Stall attribution: re-derive WHERE SS_overall comes from. The evaluator's
// Step 3 collapses the per-memory stalls into one number (and may replace it
// with the rigid keep-out accumulation); this file walks the same arithmetic
// over a finished Result's diagnostics and hands back an exact decomposition
// — per memory module, and per rigid unit memory when the accumulation wins
// — whose contributions sum to the reported SS_overall bit for bit. Package
// obs turns this into the serialized explainer report; keeping the
// arithmetic here (same package as integrateValues/rigidTotal) means there
// is exactly one definition of the Step-3 semantics to keep in sync.

import (
	"repro/internal/arch"
	"repro/internal/loops"
)

// AttribMode names which Step-3 path produced SS_overall.
type AttribMode uint8

// Attribution modes.
const (
	// AttribNone: SS_overall is zero (every memory has slack).
	AttribNone AttribMode = iota
	// AttribPorts: SS_overall is the port/memory integration (max across
	// concurrent memories, sum across sequential ones).
	AttribPorts
	// AttribRigid: SS_overall is the rigid keep-out accumulation — unit
	// memories whose windows are hard period-boundary freezes add up even
	// though the plain integration would hide them behind each other.
	AttribRigid
)

// String names the mode.
func (m AttribMode) String() string {
	switch m {
	case AttribNone:
		return "none"
	case AttribPorts:
		return "ports"
	case AttribRigid:
		return "rigid"
	}
	return "AttribMode(?)"
}

// MemContribution is one memory module's share of SS_overall.
type MemContribution struct {
	MemName string
	// SS is the module's own combined stall (max over its ports), the
	// value Step 3 integrated.
	SS float64
	// Contribution is the module's share of SS_overall under the active
	// mode; the contributions of all modules sum to SS_overall exactly.
	Contribution float64
}

// RigidUnit is one unit memory's entry in the rigid keep-out accumulation:
// the worst per-kind stall of the (operand, level) unit memory, which
// accumulates across units because their freezes occupy disjoint period
// boundaries (DESIGN.md §5).
type RigidUnit struct {
	Operand loops.Operand
	Level   int
	MemName string // the unit memory's physical module (chain level)
	Kind    LinkKind
	SS      float64
}

// Attribution decomposes a Result's SS_overall into concrete causes.
type Attribution struct {
	Mode AttribMode
	// Integrated is the plain Step-3 port/memory integration (pre-clamp);
	// RigidTotal is the keep-out accumulation. SS_raw = max of the two
	// (unless the rigid path is ablated away), SS_overall clamps at 0.
	Integrated float64
	RigidTotal float64
	// Mems holds every memory module in the Result's canonical order with
	// its contribution; Σ Contribution == SS_overall.
	Mems []MemContribution
	// Rigid lists the accumulated unit memories (AttribRigid mode only),
	// worst first is NOT guaranteed — order follows the endpoint slab.
	Rigid []RigidUnit
}

// rigidUnits mirrors Evaluator.rigidTotal over a Result's endpoint list,
// additionally resolving each unit to its physical module and winning link
// kind. Same filter, same per-kind max, same cross-kind max, same sum.
func rigidUnits(a *arch.Arch, eps []*Endpoint) ([]RigidUnit, float64) {
	type entry struct {
		op    loops.Operand
		level int
		kind  [3]float64
	}
	var entries []entry
	for _, e := range eps {
		if e.XReq >= e.MemCC || e.SSu <= 0 {
			continue
		}
		var ent *entry
		for i := range entries {
			if entries[i].op == e.Operand && entries[i].level == e.Level {
				ent = &entries[i]
				break
			}
		}
		if ent == nil {
			entries = append(entries, entry{op: e.Operand, level: e.Level})
			ent = &entries[len(entries)-1]
		}
		if e.SSu > ent.kind[e.Kind] {
			ent.kind[e.Kind] = e.SSu
		}
	}
	var units []RigidUnit
	var total float64
	for i := range entries {
		unit, kind := 0.0, Fill
		for k, v := range entries[i].kind {
			if v > unit {
				unit, kind = v, LinkKind(k)
			}
		}
		total += unit
		mem := ""
		if chain := a.ChainMems(entries[i].op); entries[i].level < len(chain) {
			mem = chain[entries[i].level].Name
		}
		units = append(units, RigidUnit{
			Operand: entries[i].op, Level: entries[i].level,
			MemName: mem, Kind: kind, SS: unit,
		})
	}
	return units, total
}

// Attribute decomposes r.SSOverall. The Problem p must be the one r was
// evaluated from (the architecture decides the integration mode and the
// rigid ablation). Invariant: Σ Mems[i].Contribution == r.SSOverall (and,
// in AttribRigid mode, Σ Rigid[i].SS == r.SSOverall as well).
func Attribute(p *Problem, r *Result) *Attribution {
	at := &Attribution{}
	opts := p.opts()

	// Re-run the Step-3 integration over the per-memory stalls.
	mems := make([]memEntry, len(r.Memories))
	for i, ms := range r.Memories {
		mems[i] = memEntry{name: ms.MemName, ss: ms.SS}
	}
	at.Integrated = integrateValues(mems, p.Arch.Combine)

	var units []RigidUnit
	var rigid float64
	if !opts.NoRigidAccumulation {
		units, rigid = rigidUnits(p.Arch, r.Endpoints)
	}
	at.RigidTotal = rigid

	at.Mems = make([]MemContribution, len(r.Memories))
	for i, ms := range r.Memories {
		at.Mems[i] = MemContribution{MemName: ms.MemName, SS: ms.SS}
	}

	ssRaw := at.Integrated
	rigidWins := !opts.NoRigidAccumulation && rigid > ssRaw
	if rigidWins {
		ssRaw = rigid
	}
	switch {
	case ssRaw <= 0:
		at.Mode = AttribNone
	case rigidWins:
		at.Mode = AttribRigid
		at.Rigid = units
		// Attribute each unit's stall to its physical module.
		for i := range units {
			for j := range at.Mems {
				if at.Mems[j].MemName == units[i].MemName {
					at.Mems[j].Contribution += units[i].SS
					break
				}
			}
		}
	case p.Arch.Combine == arch.Sequential && anyPositive(mems):
		at.Mode = AttribPorts
		// Sequential memories accumulate: each stalled module contributes
		// its own stall (exactly the terms integrateValues summed).
		for i := range at.Mems {
			if at.Mems[i].SS > 0 {
				at.Mems[i].Contribution = at.Mems[i].SS
			}
		}
	default:
		at.Mode = AttribPorts
		// Concurrent memories hide each other: the (first) maximum module
		// carries the whole stall — integrateValues' strict > keeps the
		// first argmax in the canonical memory order.
		best := 0
		for i := 1; i < len(at.Mems); i++ {
			if at.Mems[i].SS > at.Mems[best].SS {
				best = i
			}
		}
		if len(at.Mems) > 0 {
			at.Mems[best].Contribution = r.SSOverall
		}
	}
	return at
}

func anyPositive(mems []memEntry) bool {
	for i := range mems {
		if mems[i].ss > 0 {
			return true
		}
	}
	return false
}
