package core

import (
	"testing"

	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// permute returns all permutations of n (small) in a deterministic order.
func permute(n loops.Nest) []loops.Nest {
	if len(n) <= 1 {
		return []loops.Nest{n.Clone()}
	}
	var out []loops.Nest
	for i := range n {
		rest := make(loops.Nest, 0, len(n)-1)
		rest = append(rest, n[:i]...)
		rest = append(rest, n[i+1:]...)
		for _, p := range permute(rest) {
			out = append(out, append(loops.Nest{n[i]}, p...))
		}
	}
	return out
}

// TestOpCacheBitIdentical: a shared Evaluator (whose Step-1 op-cache stays
// warm across calls) must produce bit-identical results to a throwaway
// Evaluator per call, over mapping permutations engineered to hit the cache.
func TestOpCacheBitIdentical(t *testing.T) {
	l := workload.NewConv2D("c", 1, 4, 2, 4, 4, 3, 3)
	a := microArch(4, 37, 53, 29, false)

	base := loops.Nest{
		{Dim: loops.C, Size: 2}, {Dim: loops.OX, Size: 4},
		{Dim: loops.OY, Size: 4}, {Dim: loops.FX, Size: 3}, {Dim: loops.FY, Size: 3},
	}
	perms := permute(base)
	if len(perms) != 120 {
		t.Fatalf("got %d permutations", len(perms))
	}

	shared := NewEvaluator()
	evaluated := 0
	for _, tmp := range perms {
		for split := 0; split <= len(tmp); split++ {
			m := &mapping.Mapping{
				Spatial:  loops.Nest{{Dim: loops.K, Size: 4}},
				Temporal: tmp,
			}
			for _, op := range loops.AllOperands {
				m.Bound[op] = []int{split, len(tmp)}
			}
			p := &Problem{Layer: &l, Arch: a, Mapping: m}
			if err := m.Validate(&l, a); err != nil {
				t.Fatalf("mapping invalid: %v", err)
			}

			want, err1 := Evaluate(p) // throwaway evaluator: never cached
			got, err2 := shared.Evaluate(p)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch: fresh=%v shared=%v", err1, err2)
			}
			if err1 != nil {
				continue
			}
			evaluated++
			if got.CCTotal != want.CCTotal || got.SSOverall != want.SSOverall ||
				got.Preload != want.Preload || got.Offload != want.Offload ||
				got.SSRaw != want.SSRaw || got.CCSpatial != want.CCSpatial {
				t.Fatalf("split %d temporal %v:\n shared CCTotal=%v SS=%v pre=%v post=%v\n fresh  CCTotal=%v SS=%v pre=%v post=%v",
					split, tmp, got.CCTotal, got.SSOverall, got.Preload, got.Offload,
					want.CCTotal, want.SSOverall, want.Preload, want.Offload)
			}
			if len(got.Endpoints) != len(want.Endpoints) {
				t.Fatalf("endpoint count %d != %d", len(got.Endpoints), len(want.Endpoints))
			}
			for i := range got.Endpoints {
				g, w := got.Endpoints[i], want.Endpoints[i]
				if g.MemData != w.MemData || g.MemCC != w.MemCC || g.Z != w.Z ||
					g.TopRun != w.TopRun || g.XReq != w.XReq || g.XReal != w.XReal ||
					g.SSu != w.SSu || g.Window != w.Window {
					t.Fatalf("endpoint %d differs:\n shared %+v\n fresh  %+v", i, *g, *w)
				}
			}
		}
	}
	if evaluated < 300 {
		t.Fatalf("only %d cases evaluated", evaluated)
	}

	// The cache must have deduplicated across within-level permutations:
	// far fewer interned keys than evaluations.
	interned := 0
	for op := range shared.opc.m {
		interned += len(shared.opc.m[op])
	}
	if interned == 0 || interned >= evaluated {
		t.Fatalf("op-cache interned %d keys over %d evaluations — no reuse", interned, evaluated)
	}
	t.Logf("op-cache: %d interned keys over %d evaluations", interned, evaluated)
}

// TestOpCacheRescope: changing the layer, arch or spatial nest between calls
// must invalidate the cache (and still give fresh-identical results).
func TestOpCacheRescope(t *testing.T) {
	shared := NewEvaluator()
	layers := []workload.Layer{
		workload.NewMatMul("m1", 2, 4, 8),
		workload.NewMatMul("m2", 4, 4, 8),
	}
	archs := []*struct{ regRW int64 }{{16}, {64}}
	for _, la := range layers {
		la := la
		for _, ac := range archs {
			a := microArch(4, ac.regRW, 53, 29, false)
			for _, spK := range []int64{2, 4} {
				tK := int64(4) / spK * (la.Dim(loops.K) / 4)
				tmp := loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: la.Dim(loops.B)}}
				if tK > 1 {
					tmp = append(tmp, loops.Loop{Dim: loops.K, Size: tK})
				}
				m := &mapping.Mapping{
					Spatial:  loops.Nest{{Dim: loops.K, Size: spK}},
					Temporal: tmp,
				}
				for _, op := range loops.AllOperands {
					m.Bound[op] = []int{1, len(tmp)}
				}
				p := &Problem{Layer: &la, Arch: a, Mapping: m}
				if err := m.Validate(&la, a); err != nil {
					t.Fatalf("mapping invalid: %v", err)
				}
				want, err1 := Evaluate(p)
				got, err2 := shared.Evaluate(p)
				if err1 != nil || err2 != nil {
					t.Fatalf("eval: %v / %v", err1, err2)
				}
				if got.CCTotal != want.CCTotal || got.SSOverall != want.SSOverall {
					t.Fatalf("layer %s reg %d spatial K%d: shared %v != fresh %v",
						la.Name, ac.regRW, spK, got.CCTotal, want.CCTotal)
				}
			}
		}
	}
}
