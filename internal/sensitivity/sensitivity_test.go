package sensitivity

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

func TestAnalyzeBandwidthBoundLayer(t *testing.T) {
	// Output-heavy layer on the case-study arch: the GB ports should top
	// the tornado.
	l := workload.NewMatMul("s", 128, 128, 8)
	hw := arch.CaseStudy()
	effects, err := Analyze(&l, hw, arch.CaseStudySpatial(), &Options{
		MaxCandidates: 800, SkipCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) == 0 {
		t.Fatal("no effects")
	}
	// Monotonicity: doubling any bandwidth never hurts, halving never
	// helps.
	for _, e := range effects {
		if e.DoubleCC > e.BaseCC+1e-9 {
			t.Errorf("%s: doubling raised latency %v -> %v", e.Parameter, e.BaseCC, e.DoubleCC)
		}
		if e.HalfCC < e.BaseCC-1e-9 {
			t.Errorf("%s: halving lowered latency %v -> %v", e.Parameter, e.BaseCC, e.HalfCC)
		}
		if e.Swing < -1e-9 {
			t.Errorf("%s: negative swing %v", e.Parameter, e.Swing)
		}
	}
	// Sorted by swing.
	for i := 1; i < len(effects); i++ {
		if effects[i].Swing > effects[i-1].Swing+1e-9 {
			t.Error("effects not sorted by swing")
		}
	}
	// The top knob must be a GB port (the stall source for this layer).
	if !strings.HasPrefix(effects[0].Parameter.String(), "GB.") {
		t.Errorf("top parameter = %s, want a GB port\n%s",
			effects[0].Parameter, Report(effects))
	}
}

func TestAnalyzeComputeBoundLayerFlat(t *testing.T) {
	// Reduction-heavy layer: compute-bound, so bandwidth knobs have small
	// swing relative to total latency.
	l := workload.NewMatMul("c", 128, 128, 512)
	hw := arch.CaseStudy()
	effects, err := Analyze(&l, hw, arch.CaseStudySpatial(), &Options{
		MaxCandidates: 600, SkipCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// On a compute-bound layer, DOUBLING any bandwidth buys almost
	// nothing (halving can still hurt a saturated link, which is exactly
	// what the tornado is for).
	for _, e := range effects {
		if gain := e.BaseCC - e.DoubleCC; gain > 0.1*e.BaseCC {
			t.Errorf("%s: doubling gained %.0f cc on a compute-bound layer (base %.0f)",
				e.Parameter, gain, e.BaseCC)
		}
	}
}

func TestCapacityKnobs(t *testing.T) {
	l := workload.NewMatMul("k", 64, 64, 64)
	hw := arch.CaseStudy()
	effects, err := Analyze(&l, hw, arch.CaseStudySpatial(), &Options{
		MaxCandidates: 400, SkipBandwidth: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range effects {
		if e.Parameter.Port != "" {
			t.Errorf("bandwidth knob %s present with SkipBandwidth", e.Parameter)
		}
	}
	// Shrink the W registers to exactly the spatial tile: halving then
	// makes every mapping invalid and the unmappable penalty must kick
	// in instead of an error.
	tight := arch.CaseStudy()
	tight.MemoryByName("W-Reg").CapacityBits = 32 * 8
	effects2, err := Analyze(&l, tight, arch.CaseStudySpatial(), &Options{
		MaxCandidates: 400, SkipBandwidth: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range effects2 {
		if e.Parameter.Mem == "W-Reg" && e.HalfCC >= 4*e.BaseCC {
			found = true
		}
	}
	if !found {
		t.Log(Report(effects2))
		t.Error("register capacity halving did not trigger the unmappable penalty")
	}
}

func TestReportFormat(t *testing.T) {
	s := Report([]Effect{{Parameter: Parameter{Mem: "GB", Port: "rd"}, BaseCC: 10, HalfCC: 20, DoubleCC: 5, Swing: 15}})
	for _, want := range []string{"parameter", "GB.rd BW", "15"} {
		if !strings.Contains(s, want) {
			t.Errorf("report misses %q:\n%s", want, s)
		}
	}
	if (Parameter{Mem: "X"}).String() != "X capacity" {
		t.Error("capacity parameter name wrong")
	}
}
