// Package sensitivity performs one-at-a-time parameter sensitivity
// analysis on an architecture: every tunable hardware parameter (each
// memory's capacity and each port's bandwidth) is halved and doubled, the
// mapping re-optimized, and the latency impact recorded — the tornado-chart
// view that tells a designer WHERE the next wire or kilobyte buys the most
// cycles, the actionable form of the paper's bottleneck-identification
// claim (Section III-E).
package sensitivity

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// Parameter identifies one tunable knob.
type Parameter struct {
	Mem  string
	Port string // empty: the memory's capacity; else the port's bandwidth
}

// String renders e.g. "GB.rd BW" or "W-LB capacity".
func (p Parameter) String() string {
	if p.Port == "" {
		return p.Mem + " capacity"
	}
	return p.Mem + "." + p.Port + " BW"
}

// Effect is the measured impact of one parameter.
type Effect struct {
	Parameter Parameter
	BaseCC    float64
	HalfCC    float64 // latency with the parameter halved
	DoubleCC  float64 // latency with the parameter doubled
	// Swing = HalfCC - DoubleCC: the total latency range the parameter
	// controls (>= 0 for monotone parameters).
	Swing float64
}

// Options tunes the analysis.
type Options struct {
	// MaxCandidates is the per-point mapping budget (default 1500).
	MaxCandidates int
	// SkipCapacity or SkipBandwidth restricts the swept knobs.
	SkipCapacity  bool
	SkipBandwidth bool
}

// Analyze sweeps every parameter of hw and returns effects sorted by
// descending swing. The spatial unrolling stays fixed; the temporal
// mapping is re-optimized per point (hardware-mapping co-adaptation).
func Analyze(l *workload.Layer, hw *arch.Arch, spatial loops.Nest, opt *Options) ([]Effect, error) {
	if opt == nil {
		opt = &Options{}
	}
	budget := opt.MaxCandidates
	if budget <= 0 {
		budget = 1500
	}
	eval := func(a *arch.Arch) (float64, error) {
		layer := *l
		best, _, err := mapper.Best(context.Background(), &layer, a, &mapper.Options{
			Spatial: spatial, BWAware: true, Pow2Splits: true, MaxCandidates: budget,
		})
		if err != nil {
			return 0, err
		}
		return best.Result.CCTotal, nil
	}
	base, err := eval(hw)
	if err != nil {
		return nil, fmt.Errorf("sensitivity: base point: %w", err)
	}

	var params []Parameter
	for _, m := range hw.Memories {
		if !opt.SkipCapacity {
			params = append(params, Parameter{Mem: m.Name})
		}
		if !opt.SkipBandwidth {
			for _, p := range m.Ports {
				params = append(params, Parameter{Mem: m.Name, Port: p.Name})
			}
		}
	}

	var out []Effect
	for _, param := range params {
		e := Effect{Parameter: param, BaseCC: base}
		for _, scale := range []struct {
			factor float64
			dst    *float64
		}{{0.5, &e.HalfCC}, {2, &e.DoubleCC}} {
			mod := hw.Clone()
			mem := mod.MemoryByName(param.Mem)
			if param.Port == "" {
				mem.CapacityBits = int64(float64(mem.CapacityBits) * scale.factor)
				if mem.CapacityBits < 8 {
					mem.CapacityBits = 8
				}
			} else {
				for i := range mem.Ports {
					if mem.Ports[i].Name == param.Port {
						mem.Ports[i].BWBits = int64(float64(mem.Ports[i].BWBits) * scale.factor)
						if mem.Ports[i].BWBits < 1 {
							mem.Ports[i].BWBits = 1
						}
					}
				}
			}
			cc, err := eval(mod)
			if err != nil {
				// No valid mapping at this point (e.g. capacity halved
				// below the spatial tile): treat as unbounded penalty.
				cc = base * 16
			}
			*scale.dst = cc
		}
		e.Swing = e.HalfCC - e.DoubleCC
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Swing != out[j].Swing {
			return out[i].Swing > out[j].Swing
		}
		return out[i].Parameter.String() < out[j].Parameter.String()
	})
	return out, nil
}

// Report renders the tornado table.
func Report(effects []Effect) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %12s %12s %12s\n", "parameter", "half", "base", "double", "swing")
	for _, e := range effects {
		fmt.Fprintf(&b, "%-20s %12.0f %12.0f %12.0f %12.0f\n",
			e.Parameter, e.HalfCC, e.BaseCC, e.DoubleCC, e.Swing)
	}
	return b.String()
}
