package network

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/loops"
)

// MultiCoreOptions configures a multi-accelerator evaluation: Cores
// identical accelerator instances share the workload, either by splitting
// every layer's batch/row dimension across cores (data parallelism) or by
// assigning whole layers to cores round-robin as a pipeline.
type MultiCoreOptions struct {
	Cores int
	// Pipeline selects layer-pipelined execution (throughput-oriented)
	// instead of per-layer batch splitting (latency-oriented).
	Pipeline bool
	// ShareGBBandwidth divides each core's global-buffer port bandwidth
	// by the core count, modeling cores contending for one off-chip
	// interface (data-parallel mode only).
	ShareGBBandwidth bool
	// Options carries the per-layer evaluation settings.
	Options Options
}

// MultiCoreResult is the outcome of a multi-core evaluation.
type MultiCoreResult struct {
	Cores int
	// LatencyCC: data-parallel = the slowest core's makespan; pipeline =
	// the bottleneck stage's latency (the steady-state initiation
	// interval).
	LatencyCC float64
	// SingleCoreCC is the 1-core reference latency.
	SingleCoreCC float64
	// Speedup = SingleCoreCC / LatencyCC.
	Speedup float64
	// Efficiency = Speedup / Cores.
	Efficiency float64
	// PerCore (pipeline mode): the per-stage makespans.
	PerCore []float64
}

// EvaluateMultiCore runs the network on opt.Cores instances of hw.
//
// Data-parallel mode splits each layer's B dimension as evenly as the core
// count allows (cores get ceil(B/Cores); the makespan is set by the largest
// shard) and optionally divides the GB bandwidth. Pipeline mode assigns
// layers to cores round-robin; the reported latency is the bottleneck
// core's total, i.e. the steady-state initiation interval of the pipeline.
func EvaluateMultiCore(ctx context.Context, n *Network, hw *arch.Arch, spatial loops.Nest, opt *MultiCoreOptions) (*MultiCoreResult, error) {
	if opt == nil || opt.Cores < 1 {
		return nil, fmt.Errorf("network: need at least 1 core")
	}
	base, err := Evaluate(ctx, n, hw, spatial, &opt.Options)
	if err != nil {
		return nil, err
	}
	res := &MultiCoreResult{Cores: opt.Cores, SingleCoreCC: base.TotalCC}
	if opt.Cores == 1 {
		res.LatencyCC = base.TotalCC
		res.Speedup, res.Efficiency = 1, 1
		return res, nil
	}

	if opt.Pipeline {
		// Round-robin layer assignment; bottleneck stage dominates.
		stages := make([]float64, opt.Cores)
		for i := range base.Layers {
			stages[i%opt.Cores] += base.Layers[i].EffectiveCC
		}
		worst := 0.0
		for _, s := range stages {
			if s > worst {
				worst = s
			}
		}
		res.PerCore = stages
		res.LatencyCC = worst
		res.Speedup = base.TotalCC / worst
		res.Efficiency = res.Speedup / float64(opt.Cores)
		return res, nil
	}

	// Data parallel: split each layer's B dimension.
	coreHW := hw
	if opt.ShareGBBandwidth {
		coreHW = hw.Clone()
		top := outermost(coreHW)
		if top != nil {
			for i := range top.Ports {
				bw := top.Ports[i].BWBits / int64(opt.Cores)
				if bw < 1 {
					bw = 1
				}
				top.Ports[i].BWBits = bw
			}
		}
	}
	shard := &Network{Name: n.Name + "-shard"}
	for i := range n.Layers {
		l := n.Layers[i]
		// Split the first output dimension large enough to shard: batch
		// rows first, then output rows/columns (conv layers usually run
		// B=1), then output channels. Only the extent shrinks, so the
		// shard layer stays valid.
		for _, d := range []loops.Dim{loops.B, loops.OY, loops.OX, loops.K} {
			if l.Dim(d) >= int64(opt.Cores) {
				l.Dims[d] = loops.CeilDiv(l.Dim(d), int64(opt.Cores))
				break
			}
		}
		l.Name = fmt.Sprintf("%s/c%d", l.Name, opt.Cores)
		shard.Layers = append(shard.Layers, l)
	}
	shardRes, err := Evaluate(ctx, shard, coreHW, spatial, &opt.Options)
	if err != nil {
		return nil, fmt.Errorf("network: shard evaluation: %w", err)
	}
	res.LatencyCC = shardRes.TotalCC
	res.Speedup = base.TotalCC / shardRes.TotalCC
	res.Efficiency = res.Speedup / float64(opt.Cores)
	return res, nil
}

// ScalingCurve evaluates 1..maxCores and returns the speedups, a compact
// strong-scaling study for the future-work scenario.
func ScalingCurve(ctx context.Context, n *Network, hw *arch.Arch, spatial loops.Nest, maxCores int, opt *MultiCoreOptions) ([]MultiCoreResult, error) {
	if opt == nil {
		opt = &MultiCoreOptions{Options: Options{MaxCandidates: 1000}}
	}
	var out []MultiCoreResult
	for c := 1; c <= maxCores; c *= 2 {
		o := *opt
		o.Cores = c
		r, err := EvaluateMultiCore(ctx, n, hw, spatial, &o)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}
