package network

import (
	"context"
	"testing"

	"repro/internal/arch"
)

func mcOpts(cores int, pipeline, share bool) *MultiCoreOptions {
	return &MultiCoreOptions{
		Cores:            cores,
		Pipeline:         pipeline,
		ShareGBBandwidth: share,
		Options:          Options{MaxCandidates: 800},
	}
}

func TestMultiCoreSingle(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	r, err := EvaluateMultiCore(context.Background(), n, hw, arch.CaseStudySpatial(), mcOpts(1, false, false))
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup != 1 || r.Efficiency != 1 || r.LatencyCC != r.SingleCoreCC {
		t.Errorf("1-core results wrong: %+v", r)
	}
}

func TestMultiCoreDataParallel(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	r, err := EvaluateMultiCore(context.Background(), n, hw, arch.CaseStudySpatial(), mcOpts(4, false, false))
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 1.2 {
		t.Errorf("4-core data-parallel speedup %.2f too low", r.Speedup)
	}
	if r.Speedup > 4.5 {
		t.Errorf("superlinear beyond tolerance: %.2f", r.Speedup)
	}
	if r.Efficiency <= 0 || r.Efficiency > 1.2 {
		t.Errorf("efficiency %.2f out of band", r.Efficiency)
	}
}

func TestMultiCoreSharedBandwidthHurts(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	private, err := EvaluateMultiCore(context.Background(), n, hw, arch.CaseStudySpatial(), mcOpts(4, false, false))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := EvaluateMultiCore(context.Background(), n, hw, arch.CaseStudySpatial(), mcOpts(4, false, true))
	if err != nil {
		t.Fatal(err)
	}
	if shared.Speedup > private.Speedup+1e-9 {
		t.Errorf("sharing the GB interface helped: %.2f vs %.2f", shared.Speedup, private.Speedup)
	}
}

func TestMultiCorePipeline(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	r, err := EvaluateMultiCore(context.Background(), n, hw, arch.CaseStudySpatial(), mcOpts(3, true, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerCore) != 3 {
		t.Fatalf("per-core stages = %d", len(r.PerCore))
	}
	var sum, worst float64
	for _, s := range r.PerCore {
		sum += s
		if s > worst {
			worst = s
		}
	}
	if r.LatencyCC != worst {
		t.Error("pipeline latency is not the bottleneck stage")
	}
	if d := sum - r.SingleCoreCC; d > 1e-6 || d < -1e-6 {
		t.Errorf("stage sum %v != single-core %v", sum, r.SingleCoreCC)
	}
	// Pipelining a 3-layer net over 3 cores can never exceed 3x.
	if r.Speedup > 3+1e-9 {
		t.Errorf("impossible pipeline speedup %.2f", r.Speedup)
	}
}

func TestScalingCurve(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	curve, err := ScalingCurve(context.Background(), n, hw, arch.CaseStudySpatial(), 4,
		mcOpts(0, false, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 { // 1, 2, 4
		t.Fatalf("curve points = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].LatencyCC > curve[i-1].LatencyCC+1e-9 {
			t.Errorf("more cores increased latency: %v -> %v",
				curve[i-1].LatencyCC, curve[i].LatencyCC)
		}
	}
}

func TestMultiCoreErrors(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	if _, err := EvaluateMultiCore(context.Background(), n, hw, arch.CaseStudySpatial(), nil); err == nil {
		t.Error("nil options accepted")
	}
	if _, err := EvaluateMultiCore(context.Background(), n, hw, arch.CaseStudySpatial(), mcOpts(0, false, false)); err == nil {
		t.Error("0 cores accepted")
	}
}
