package network_test

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/mapper"
	"repro/internal/network"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// A transformer block evaluates end to end: matmul-shaped ops go through
// the mapper (head-batched ones priced per head and scaled exactly),
// elementwise ops are bandwidth-priced with no candidate, and the network
// total reconciles bit-exactly with the per-layer contributions.
func TestEvaluateTransformerBlock(t *testing.T) {
	cfg := transformer.Tiny()
	blk, err := transformer.NewBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := blk.Network(1)
	hw := arch.CaseStudy()
	opts := &network.Options{MaxCandidates: 1200}
	r, err := network.Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Layers) != len(blk.Ops) {
		t.Fatalf("layers = %d, want %d", len(r.Layers), len(blk.Ops))
	}

	var sumCC, sumPJ float64
	for i := range r.Layers {
		lr := &r.Layers[i]
		sumCC += lr.EffectiveCC
		sumPJ += lr.EnergyPJ
		if lr.Layer.Kind.Elementwise() {
			if lr.Candidate != nil {
				t.Errorf("%s: elementwise layer got a mapping candidate", lr.Original)
			}
			if lr.BWBoundCC <= 0 || lr.ReadBits <= 0 || lr.WriteBits <= 0 {
				t.Errorf("%s: elementwise cost empty (cc=%v rd=%d wr=%d)",
					lr.Original, lr.BWBoundCC, lr.ReadBits, lr.WriteBits)
			}
			if lr.EnergyPJ <= 0 {
				t.Errorf("%s: elementwise energy empty", lr.Original)
			}
		} else {
			if lr.Candidate == nil {
				t.Errorf("%s: matmul-shaped layer has no candidate", lr.Original)
				continue
			}
			if lr.EnergyPJ <= 0 && lr.EnergyErr == nil {
				t.Errorf("%s: no energy and no error", lr.Original)
			}
		}
	}
	// Per-op contributions must reconcile bit-exactly with the total: the
	// CLI table is derived from exactly these fields.
	if sumCC != r.TotalCC {
		t.Errorf("sum of layer EffectiveCC %v != TotalCC %v", sumCC, r.TotalCC)
	}
	if sumPJ != r.TotalPJ {
		t.Errorf("sum of layer EnergyPJ %v != TotalPJ %v", sumPJ, r.TotalPJ)
	}
	if n.TotalMACs() != blk.WorkMACs() {
		t.Errorf("network MACs %d != block WorkMACs %d", n.TotalMACs(), blk.WorkMACs())
	}
}

// A head-batched attention layer must cost exactly HeadCount times the
// per-head search result — same candidate the mapper returns for the
// stripped layer.
func TestEvaluateHeadScalingExact(t *testing.T) {
	score := workload.NewAttnScore("s", 16, 16, 16, 4)
	n := &network.Network{Name: "attn", Layers: []workload.Layer{score}}
	hw := arch.CaseStudy()
	r, err := network.Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(),
		&network.Options{MaxCandidates: 1200})
	if err != nil {
		t.Fatal(err)
	}
	perHead := score
	perHead.Heads = 0
	cand, _, err := mapper.BestCached(context.Background(), &perHead, hw, &mapper.Options{
		Spatial:       arch.CaseStudySpatial(),
		BWAware:       true,
		MaxCandidates: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr := &r.Layers[0]
	got := lr.EffectiveCC - lr.SpillCC + lr.PrefetchSaved
	want := 4 * cand.Result.CCTotal
	if got != want {
		t.Errorf("head-batched CC = %v, want exactly 4 x %v", got, cand.Result.CCTotal)
	}
	if lr.Candidate.Result.CCTotal != cand.Result.CCTotal {
		t.Errorf("stored candidate differs from per-head search")
	}
}

// Head counts share one memoized search: evaluating the same per-head shape
// under different Heads must not change the per-head candidate.
func TestHeadCountsShareSearch(t *testing.T) {
	hw := arch.CaseStudy()
	var cc [2]float64
	for i, h := range []int64{2, 8} {
		l := workload.NewAttnCtx("c", 16, 16, 16, h)
		n := &network.Network{Name: "attn", Layers: []workload.Layer{l}}
		r, err := network.Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(),
			&network.Options{MaxCandidates: 1200})
		if err != nil {
			t.Fatal(err)
		}
		cc[i] = r.Layers[0].Candidate.Result.CCTotal
	}
	if cc[0] != cc[1] {
		t.Errorf("per-head CC differs across head counts: %v vs %v", cc[0], cc[1])
	}
}
