// Package network extends the intra-layer latency model across whole DNNs —
// the paper's stated future work ("modeling and optimizing latency in
// cross-layer multi-core DNN mapping scenarios", Section VI). A network is
// an ordered sequence of layers executed on one accelerator; each layer is
// lowered (Im2Col), mapped with the per-layer optimizer, and priced with
// the intra-layer model. Two cross-layer effects are modeled:
//
//   - prefetch overlap: the next layer's weight pre-loading can hide under
//     the current layer's computation when the weight path (W-LB) is
//     double-buffered — the saved cycles are min(preload_{i+1}, busy_i);
//   - on-chip forwarding: when a layer's output and its successor's input
//     both fit in the global buffer alongside the working tiles, the
//     intermediate tensor never leaves the chip (this is the default
//     intra-layer assumption; the network model checks it and charges a
//     DRAM-style spill penalty otherwise).
package network

import (
	"context"
	"fmt"
	"log/slog"
	"strings"

	"repro/internal/alloc"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/otrace"
	"repro/internal/par"
	"repro/internal/workload"
)

// energyEvaluate is the per-layer energy model, a variable so tests can
// inject failures (the energy model has no failing inputs reachable from a
// valid mapping).
var energyEvaluate = energy.Evaluate

// Network is an ordered sequence of layers with tensor dependencies
// layer[i] output -> layer[i+1] input.
type Network struct {
	Name   string
	Layers []workload.Layer
}

// Validate checks every layer.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("network %q has no layers", n.Name)
	}
	for i := range n.Layers {
		if err := n.Layers[i].Validate(); err != nil {
			return fmt.Errorf("network %q layer %d: %w", n.Name, i, err)
		}
	}
	return nil
}

// TotalMACs sums the whole-operator MAC work of all layers (head-batched
// attention matmuls count every head; elementwise passes contribute none).
func (n *Network) TotalMACs() int64 {
	var t int64
	for i := range n.Layers {
		t += n.Layers[i].WorkMACs()
	}
	return t
}

// Options tunes a network evaluation.
type Options struct {
	// MaxCandidates is the per-layer mapping search budget (default 6000).
	MaxCandidates int
	// Objective ranks per-layer mappings (default MinLatency).
	Objective mapper.Objective
	// NoPrefetch disables cross-layer weight prefetch overlap.
	NoPrefetch bool
	// NoReduce disables the symmetry-reduced mapping enumeration for the
	// per-layer searches (mapper.Options.NoReduce). Results are identical
	// either way; this is the escape hatch for timing the full walk.
	NoReduce bool
	// NoSurrogate disables the surrogate-guided candidate ordering in the
	// per-layer searches (mapper.Options.NoSurrogate). Results are
	// identical either way; only the guided prune rate changes.
	NoSurrogate bool
	// SpillBWBits is the off-chip bandwidth used to price intermediate
	// tensors that do not fit on chip (default: the GB write port BW / 4,
	// a DRAM-ish derating).
	SpillBWBits int64
	// PlanGB enables the precise global-buffer allocation planner
	// (package alloc): tensors get liveness intervals and offsets, and
	// only tensors the planner actually spills are charged, replacing
	// the coarse per-boundary heuristic.
	PlanGB bool
	// Run overrides the executor of each per-layer mapping search (nil:
	// the in-process engine via mapper.BestCached). A fabric.Runner here
	// distributes every cold search across shards/nodes; the SearchFunc
	// bit-identity contract keeps the result independent of the executor.
	Run mapper.SearchFunc
}

// LayerResult is one layer's evaluation within the network.
type LayerResult struct {
	Layer    workload.Layer // the lowered (post-Im2Col) layer
	Original string         // original layer name
	// Candidate is the per-head mapping the search found. It is nil for
	// elementwise layers, which are bandwidth-bound and never enter the
	// mapper; their cost lives in BWBoundCC/ReadBits/WriteBits. For
	// head-batched layers (Layer.HeadCount() > 1) the candidate prices ONE
	// head; EffectiveCC/EnergyPJ scale it by the head count.
	Candidate *mapper.Candidate
	// BWBoundCC is an elementwise layer's streaming pass time; zero for
	// matmul-shaped layers.
	BWBoundCC float64
	// ReadBits/WriteBits are an elementwise layer's exact streamed traffic.
	ReadBits  int64
	WriteBits int64
	EnergyPJ  float64
	// EnergyErr records a failed energy model evaluation for this layer.
	// EnergyPJ is 0 (and excluded from Result.TotalPJ) when set — callers
	// rendering energy numbers should surface the error instead of showing
	// a silent zero.
	EnergyErr error
	// PrefetchSaved is the preload time hidden under the previous layer.
	PrefetchSaved float64
	// SpillCC is the extra time charged for off-chip intermediate
	// traffic when the layer boundary does not fit in the GB.
	SpillCC float64
	// EffectiveCC is the layer's contribution to the network latency.
	EffectiveCC float64
}

// Result is a whole-network evaluation.
type Result struct {
	Layers  []LayerResult
	TotalCC float64
	TotalPJ float64
	// IdealCC is the stall-free lower bound (sum of per-layer CC_ideal).
	IdealCC float64
	// PrefetchSavedCC totals the hidden preload time.
	PrefetchSavedCC float64
	// Utilization is IdealCC / TotalCC.
	Utilization float64
	// GBPlan is the buffer allocation when Options.PlanGB is set.
	GBPlan *alloc.Plan
}

// Evaluate runs every layer of the network through the mapper and the
// intra-layer model on one architecture, applying the cross-layer effects.
// Cancellation propagates into every per-layer mapping search; a canceled
// evaluation returns ctx.Err() and no partial result.
func Evaluate(ctx context.Context, n *Network, hw *arch.Arch, spatial loops.Nest, opt *Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if opt == nil {
		opt = &Options{}
	}
	maxCand := opt.MaxCandidates
	if maxCand <= 0 {
		maxCand = 6000
	}
	spillBW := opt.SpillBWBits
	if spillBW <= 0 {
		gb := outermost(hw)
		if gb != nil && len(gb.Ports) > 0 {
			spillBW = gb.Ports[len(gb.Ports)-1].BWBits / 4
		}
		if spillBW <= 0 {
			spillBW = 32
		}
	}

	res := &Result{}
	obj := opt.Objective
	needEnergy := true
	// Per-layer mapping searches are independent; run them under the shared
	// worker budget. Results land at their layer index and errors are
	// reported for the first failing layer, so the outcome is identical to
	// the old serial loop. The cross-layer passes below stay serial — they
	// chain layer i to layer i-1.
	layerRes := make([]LayerResult, len(n.Layers))
	layerErr := make([]error, len(n.Layers))
	par.ForEach(len(n.Layers), func(i int) {
		if ctx.Err() != nil {
			return // canceled: skip the remaining layers promptly
		}
		orig := n.Layers[i]
		if orig.Kind.Elementwise() {
			// Bandwidth-bound pass: priced directly from byte traffic, no
			// mapping search (Candidate stays nil).
			cost, err := elemwiseCost(&orig, hw, nil)
			if err != nil {
				layerErr[i] = fmt.Errorf("network %q layer %s: %w", n.Name, orig.Name, err)
				return
			}
			layerRes[i] = LayerResult{
				Layer:     orig,
				Original:  orig.Name,
				BWBoundCC: cost.CC,
				ReadBits:  cost.ReadBits,
				WriteBits: cost.WriteBits,
				EnergyPJ:  cost.EnergyPJ,
			}
			return
		}
		lowered := workload.Im2Col(orig)
		// The mapper prices the PER-HEAD problem: strip the head multiplicity
		// so attention layers that differ only in head count share one
		// memoized search (the shape key encodes HeadCount).
		search := lowered
		search.Heads = 0
		// Cached search: a network repeats layer shapes (residual stages,
		// repeated blocks), and the memo key ignores layer names — repeats
		// are served from memory, concurrent duplicates singleflight.
		cand, _, err := mapper.BestCachedVia(ctx, &search, hw, &mapper.Options{
			Spatial:       spatial,
			BWAware:       true,
			Objective:     obj,
			MaxCandidates: maxCand,
			NoReduce:      opt.NoReduce,
			NoSurrogate:   opt.NoSurrogate,
		}, opt.Run)
		if err != nil {
			layerErr[i] = fmt.Errorf("network %q layer %s: %w", n.Name, orig.Name, err)
			return
		}
		lr := LayerResult{
			Layer:     lowered,
			Original:  orig.Name,
			Candidate: cand,
		}
		if needEnergy {
			p := &core.Problem{Layer: &search, Arch: hw, Mapping: cand.Mapping}
			if eb, err := energyEvaluate(p, nil); err == nil {
				lr.EnergyPJ = eb.TotalPJ * float64(lowered.HeadCount())
			} else {
				// A failed energy model must not fail the latency evaluation,
				// but it must not silently report 0 pJ either: record it on
				// the layer and say so.
				lr.EnergyErr = fmt.Errorf("network %q layer %s: energy model: %w", n.Name, orig.Name, err)
				slog.Warn("energy evaluation failed; layer reports no energy",
					"network", n.Name, "layer", orig.Name, "err", err,
					"trace_id", otrace.IDString(ctx))
			}
		}
		layerRes[i] = lr
	})
	// A cancellation outranks whatever per-layer error it surfaced as (a
	// skipped layer has a nil Candidate, not a specific failure).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range layerErr {
		if err != nil {
			return nil, err
		}
	}
	res.Layers = layerRes

	// Precise GB planning (optional): tensors with liveness intervals.
	var plannedSpill map[int]int64 // layer index -> spilled boundary bits
	if opt.PlanGB {
		plan, spills, err := planGB(res.Layers, hw)
		if err != nil {
			return nil, err
		}
		res.GBPlan = plan
		plannedSpill = spills
	}

	// Cross-layer effects.
	for i := range res.Layers {
		lr := &res.Layers[i]
		heads := float64(lr.Layer.HeadCount())
		if lr.Candidate == nil {
			// Elementwise: the streaming pass IS the layer; it is already
			// bandwidth-bound, so it is its own lower bound.
			lr.EffectiveCC = lr.BWBoundCC
			res.IdealCC += lr.BWBoundCC
		} else {
			r := lr.Candidate.Result
			lr.EffectiveCC = r.CCTotal * heads
			res.IdealCC += r.CCIdeal * heads

			// Weight prefetch: layer i's preload hides under layer i-1's
			// computation when the weight path is double-buffered. Head-
			// batched layers and elementwise predecessors opt out: the per-
			// head W is re-loaded every head, and an elementwise pass
			// saturates the very ports the preload would use.
			if !opt.NoPrefetch && i > 0 && heads == 1 && weightPathBuffered(hw) {
				if pc := res.Layers[i-1].Candidate; pc != nil && res.Layers[i-1].Layer.HeadCount() == 1 {
					prev := pc.Result
					busy := float64(prev.CCSpatial) + prev.SSOverall
					saved := r.Preload
					if saved > busy {
						saved = busy
					}
					lr.PrefetchSaved = saved
					lr.EffectiveCC -= saved
					res.PrefetchSavedCC += saved
				}
			}
		}

		// Spill: the boundary tensor between layer i and i+1 must fit in
		// the outermost memory together with both layers' working sets.
		if opt.PlanGB {
			if bits := plannedSpill[i]; bits > 0 {
				// A spilled boundary goes off chip and comes back.
				lr.SpillCC = float64(loops.CeilDiv(2*bits, spillBW))
				lr.EffectiveCC += lr.SpillCC
			}
		} else if i+1 < len(res.Layers) {
			if spill := boundarySpillBits(hw, lr, &res.Layers[i+1]); spill > 0 {
				lr.SpillCC = float64(loops.CeilDiv(spill, spillBW))
				lr.EffectiveCC += lr.SpillCC
			}
		}

		res.TotalCC += lr.EffectiveCC
		res.TotalPJ += lr.EnergyPJ
	}
	if res.TotalCC > 0 {
		res.Utilization = res.IdealCC / res.TotalCC
	}
	return res, nil
}

// planGB builds the liveness tensors of the network schedule — per-layer
// weights (extended one step earlier when prefetch applies) and boundary
// activations — and runs the buffer planner. Returns the plan and the
// spilled boundary bits per producing layer.
func planGB(layers []LayerResult, hw *arch.Arch) (*alloc.Plan, map[int]int64, error) {
	gb := outermost(hw)
	if gb == nil {
		return nil, nil, fmt.Errorf("network: no outermost memory to plan")
	}
	prefetch := weightPathBuffered(hw)
	var tensors []alloc.Tensor
	actIdx := map[int]int{} // layer -> tensor index of its output activation
	for i := range layers {
		first := i
		if prefetch && i > 0 {
			first = i - 1
		}
		tensors = append(tensors, alloc.Tensor{
			Name:     fmt.Sprintf("w[%s]", layers[i].Original),
			Bits:     layers[i].Layer.OperandBits(loops.W),
			FirstUse: first,
			LastUse:  i,
		})
		last := i
		if i+1 < len(layers) {
			last = i + 1
		}
		actIdx[i] = len(tensors)
		tensors = append(tensors, alloc.Tensor{
			Name:     fmt.Sprintf("act[%s]", layers[i].Original),
			Bits:     layers[i].Layer.OperandBits(loops.O),
			FirstUse: i,
			LastUse:  last,
		})
	}
	plan, err := alloc.Build(tensors, gb.CapacityBits)
	if err != nil {
		return nil, nil, err
	}
	spills := map[int]int64{}
	for i, ti := range actIdx {
		if plan.Placements[ti].Spill && i+1 < len(layers) {
			spills[i] = plan.Placements[ti].Tensor.Bits
		}
	}
	return plan, spills, nil
}

// outermost returns the top memory of the W chain (the GB in the presets).
func outermost(hw *arch.Arch) *arch.Memory {
	chain := hw.Chain[loops.W]
	if len(chain) == 0 {
		return nil
	}
	return hw.MemoryByName(chain[len(chain)-1])
}

// weightPathBuffered reports whether any intermediate W memory is
// double-buffered (enabling next-layer prefetch).
func weightPathBuffered(hw *arch.Arch) bool {
	for _, m := range hw.ChainMems(loops.W) {
		if m != nil && m.DoubleBuffered {
			return true
		}
	}
	return false
}

// boundarySpillBits returns how many bits of the boundary tensor overflow
// the outermost memory, given both adjacent layers' resident footprints.
func boundarySpillBits(hw *arch.Arch, cur, next *LayerResult) int64 {
	gb := outermost(hw)
	if gb == nil {
		return 0
	}
	// The boundary tensor is cur's output == next's input.
	boundary := cur.Layer.OperandBits(loops.O)
	// Working set: cur's W + next's W resident tiles at the top level are
	// streamed, so approximate the steady-state GB pressure by the
	// boundary tensor plus both layers' weight footprints (weights must
	// be on chip to avoid a second spill).
	wBits := cur.Layer.OperandBits(loops.W) + next.Layer.OperandBits(loops.W)
	over := boundary + wBits - gb.CapacityBits
	if over < 0 {
		return 0
	}
	if over > boundary {
		over = boundary
	}
	return over
}

// Report renders a per-layer table plus totals.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %10s %10s %10s %8s\n",
		"layer", "latency cc", "prefetch", "spill cc", "energy nJ", "util %")
	for i := range r.Layers {
		lr := &r.Layers[i]
		util := 100.0 // elementwise passes stream at full port speed
		if lr.Candidate != nil {
			util = 100 * lr.Candidate.Result.Utilization
		}
		fmt.Fprintf(&b, "%-14s %12.0f %10.0f %10.0f %10.1f %8.1f\n",
			lr.Original, lr.EffectiveCC, lr.PrefetchSaved, lr.SpillCC,
			lr.EnergyPJ/1e3, util)
	}
	fmt.Fprintf(&b, "network total: %.0f cc (ideal %.0f, utilization %.1f%%), %.1f uJ, %.0f cc hidden by prefetch\n",
		r.TotalCC, r.IdealCC, 100*r.Utilization, r.TotalPJ/1e6, r.PrefetchSavedCC)
	return b.String()
}

// HandTracking returns the validation workload as a network.
func HandTracking() *Network {
	return &Network{Name: "hand-tracking", Layers: workload.HandTrackingSuite()}
}
