package network

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/loops"
	"repro/internal/workload"
)

// ElemwiseCost prices a bandwidth-bound elementwise layer (DESIGN.md §15).
// These layers perform no MACs and never enter the mapper: their latency is
// the time to stream the kind's read/write passes through the outermost
// memory's ports, and their energy is that byte traffic priced at the
// memory's per-bit access energy.
type ElemwiseCost struct {
	CC        float64 // pass time in cycles
	ReadBits  int64   // total bits streamed in (all read passes + params)
	WriteBits int64   // total bits streamed out
	EnergyPJ  float64
}

// elemwiseCost computes the cost of one elementwise layer on hw. Traffic is
// exact: readPasses full passes over the input tensor (whole operator, all
// heads) plus one read of the resident parameters, and writePasses passes
// over the output. The pass streams at the outermost memory's port speeds —
// with distinct best read and write ports the directions overlap
// (CC = max of the two port times); a single shared port serializes them.
func elemwiseCost(l *workload.Layer, hw *arch.Arch, tbl *energy.Table) (ElemwiseCost, error) {
	if !l.Kind.Elementwise() {
		return ElemwiseCost{}, fmt.Errorf("network: elemwiseCost on %s layer %q", l.Kind, l.Name)
	}
	gb := outermost(hw)
	if gb == nil {
		return ElemwiseCost{}, fmt.Errorf("network: layer %q: no outermost memory to stream through", l.Name)
	}
	rdBW, rdIdx, wrBW, wrIdx := portBandwidths(gb)
	if rdBW <= 0 || wrBW <= 0 {
		return ElemwiseCost{}, fmt.Errorf("network: layer %q: memory %q has no read+write port pair", l.Name, gb.Name)
	}

	readPasses, writePasses := l.Kind.ElemwisePasses()
	read := int64(readPasses)*l.OperandBits(loops.I) + l.OperandBits(loops.W)
	write := int64(writePasses) * l.OperandBits(loops.O)

	var cc int64
	if rdIdx == wrIdx {
		cc = loops.CeilDiv(read+write, rdBW)
	} else {
		cc = loops.CeilDiv(read, rdBW)
		if w := loops.CeilDiv(write, wrBW); w > cc {
			cc = w
		}
	}

	if tbl == nil {
		tbl = energy.Default7nm()
	}
	unit := tbl.PerBit(gb.CapacityBits)
	pj := unit * (float64(read) + tbl.WritePenalty*float64(write))

	return ElemwiseCost{CC: float64(cc), ReadBits: read, WriteBits: write, EnergyPJ: pj}, nil
}

// portBandwidths returns the best read-capable and write-capable port
// bandwidths of m with their indices (first-best wins, so the choice is
// deterministic). Equal indices mean one shared port serves both directions.
func portBandwidths(m *arch.Memory) (rdBW int64, rdIdx int, wrBW int64, wrIdx int) {
	rdIdx, wrIdx = -1, -1
	for i := range m.Ports {
		p := &m.Ports[i]
		if p.Dir.Allows(false) && p.BWBits > rdBW {
			rdBW, rdIdx = p.BWBits, i
		}
		if p.Dir.Allows(true) && p.BWBits > wrBW {
			wrBW, wrIdx = p.BWBits, i
		}
	}
	return rdBW, rdIdx, wrBW, wrIdx
}
