package network

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

func smallNet() *Network {
	return &Network{
		Name: "tiny",
		Layers: []workload.Layer{
			workload.NewPointwise("pw1", 1, 32, 16, 14, 14),
			workload.NewConv2D("c2", 1, 32, 32, 14, 14, 3, 3),
			workload.NewDense("fc", 1, 64, 32*14*14),
		},
	}
}

func TestValidate(t *testing.T) {
	if err := smallNet().Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &Network{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty network validated")
	}
	bad := smallNet()
	bad.Layers[0].Dims[0] = -1
	if err := bad.Validate(); err == nil {
		t.Error("bad layer validated")
	}
}

func TestTotalMACs(t *testing.T) {
	n := smallNet()
	var want int64
	for i := range n.Layers {
		want += n.Layers[i].TotalMACs()
	}
	if got := n.TotalMACs(); got != want {
		t.Errorf("TotalMACs = %d, want %d", got, want)
	}
}

func TestEvaluateBasics(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	r, err := Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(), &Options{MaxCandidates: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Layers) != len(n.Layers) {
		t.Fatalf("layer results = %d", len(r.Layers))
	}
	if r.TotalCC <= 0 || r.TotalPJ <= 0 || r.IdealCC <= 0 {
		t.Errorf("non-positive totals: %+v", r)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Errorf("utilization %v out of band", r.Utilization)
	}
	// Sum of effective layer latencies equals the total.
	var sum float64
	for i := range r.Layers {
		sum += r.Layers[i].EffectiveCC
	}
	if d := sum - r.TotalCC; d > 1e-6 || d < -1e-6 {
		t.Errorf("total %v != sum %v", r.TotalCC, sum)
	}
	// First layer has nothing to hide its preload under.
	if r.Layers[0].PrefetchSaved != 0 {
		t.Error("first layer claims prefetch savings")
	}
	rep := r.Report()
	if !strings.Contains(rep, "network total") || !strings.Contains(rep, "pw1") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestPrefetchOverlap(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy() // W-LB double-buffered -> prefetch active
	with, err := Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(), &Options{MaxCandidates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(), &Options{MaxCandidates: 1000, NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.PrefetchSavedCC <= 0 {
		t.Error("no prefetch savings on a double-buffered weight path")
	}
	if with.TotalCC >= without.TotalCC {
		t.Errorf("prefetch did not reduce latency: %v vs %v", with.TotalCC, without.TotalCC)
	}
	if d := (without.TotalCC - with.TotalCC) - with.PrefetchSavedCC; d > 1e-6 || d < -1e-6 {
		t.Errorf("savings accounting off by %v", d)
	}
}

func TestPrefetchNeedsDoubleBuffering(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	for _, m := range hw.Memories {
		m.DoubleBuffered = false
	}
	r, err := Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(), &Options{MaxCandidates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r.PrefetchSavedCC != 0 {
		t.Error("prefetch savings without double buffering")
	}
}

func TestSpillCharged(t *testing.T) {
	// Shrink the GB so the boundary tensors overflow.
	n := smallNet()
	hw := arch.CaseStudy()
	hw.MemoryByName("GB").CapacityBits = 80 * 1024 // 10 KB
	r, err := Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(), &Options{MaxCandidates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var spill float64
	for i := range r.Layers {
		spill += r.Layers[i].SpillCC
	}
	if spill <= 0 {
		t.Error("no spill charged with a tiny GB")
	}
	// Last layer never spills (no successor).
	if r.Layers[len(r.Layers)-1].SpillCC != 0 {
		t.Error("last layer charged spill")
	}
}

func TestHandTrackingNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("full network is slow")
	}
	n := HandTracking()
	hw := arch.InHouse()
	r, err := Evaluate(context.Background(), n, hw, arch.InHouseSpatial(), &Options{MaxCandidates: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Layers) != len(n.Layers) {
		t.Fatal("missing layers")
	}
	if r.Utilization <= 0.05 {
		t.Errorf("network utilization %.3f implausibly low", r.Utilization)
	}
}

func TestEvaluateErrors(t *testing.T) {
	hw := arch.CaseStudy()
	if _, err := Evaluate(context.Background(), &Network{Name: "e"}, hw, arch.CaseStudySpatial(), nil); err == nil {
		t.Error("empty network evaluated")
	}
	// Unmappable: spatial bigger than the array.
	n := smallNet()
	big := arch.CaseStudySpatial().Clone()
	big[0].Size = 1 << 20
	if _, err := Evaluate(context.Background(), n, hw, big, &Options{MaxCandidates: 100}); err == nil {
		t.Error("unmappable network evaluated")
	}
}
