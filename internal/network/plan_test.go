package network

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
)

func TestPlanGBProducesPlan(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	r, err := Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(), &Options{
		MaxCandidates: 800, PlanGB: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.GBPlan == nil {
		t.Fatal("no GB plan produced")
	}
	// Tensors: one weight + one activation per layer.
	if got := len(r.GBPlan.Placements); got != 2*len(n.Layers) {
		t.Errorf("placements = %d, want %d", got, 2*len(n.Layers))
	}
	if r.GBPlan.PeakBits <= 0 {
		t.Error("no peak usage")
	}
	if s := r.GBPlan.Report(); !strings.Contains(s, "GB plan") {
		t.Error("plan report empty")
	}
}

func TestPlanGBSpillsUnderTinyBuffer(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	hw.MemoryByName("GB").CapacityBits = 40 * 1024 // 5 KB
	withPlan, err := Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(), &Options{
		MaxCandidates: 800, PlanGB: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withPlan.GBPlan.SpillBits == 0 {
		t.Error("tiny GB produced no spills")
	}
	var spillCC float64
	for i := range withPlan.Layers {
		spillCC += withPlan.Layers[i].SpillCC
	}
	if spillCC <= 0 {
		t.Error("no spill latency charged")
	}
	// The last layer's activation has no consumer; even when spilled it
	// is not charged as a boundary round-trip.
	if withPlan.Layers[len(withPlan.Layers)-1].SpillCC != 0 {
		t.Error("last layer charged a boundary spill")
	}
}

func TestPlanGBNoSpillsWithBigBuffer(t *testing.T) {
	n := smallNet()
	hw := arch.CaseStudy()
	hw.MemoryByName("GB").CapacityBits = 1 << 28
	r, err := Evaluate(context.Background(), n, hw, arch.CaseStudySpatial(), &Options{
		MaxCandidates: 800, PlanGB: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.GBPlan.SpillBits != 0 {
		t.Errorf("spills with a huge GB: %v", r.GBPlan.Spilled())
	}
	for i := range r.Layers {
		if r.Layers[i].SpillCC != 0 {
			t.Errorf("layer %d charged spill", i)
		}
	}
}

// The planner is never more pessimistic than needed: with prefetch, a
// layer's weights are live one step early, raising the peak.
func TestPlanGBPrefetchWidensLiveness(t *testing.T) {
	n := smallNet()
	hwPre := arch.CaseStudy() // W-LB double-buffered -> prefetch
	rPre, err := Evaluate(context.Background(), n, hwPre, arch.CaseStudySpatial(), &Options{MaxCandidates: 800, PlanGB: true})
	if err != nil {
		t.Fatal(err)
	}
	hwNo := arch.CaseStudy()
	for _, m := range hwNo.Memories {
		m.DoubleBuffered = false
	}
	rNo, err := Evaluate(context.Background(), n, hwNo, arch.CaseStudySpatial(), &Options{MaxCandidates: 800, PlanGB: true})
	if err != nil {
		t.Fatal(err)
	}
	if rPre.GBPlan.PeakBits < rNo.GBPlan.PeakBits {
		t.Errorf("prefetch peak %d < no-prefetch peak %d",
			rPre.GBPlan.PeakBits, rNo.GBPlan.PeakBits)
	}
}
