package network

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/memo"
	"repro/internal/workload"
)

// TestEvaluateCachedMatchesUncached: a network evaluation served (partly)
// from the memo cache must equal a fully uncached evaluation EXACTLY — no
// epsilon: cached results are the same bits or the cache is broken. The
// network repeats layer shapes so the cached run actually exercises hits.
func TestEvaluateCachedMatchesUncached(t *testing.T) {
	memo.Default.Reset()
	// Repeated shapes: conv2/conv3 and their duplicates dedupe.
	net := &Network{Name: "dup", Layers: []workload.Layer{
		workload.NewPointwise("a1", 1, 32, 16, 14, 14),
		workload.NewConv2D("b1", 1, 16, 16, 14, 14, 3, 3),
		workload.NewPointwise("a2", 1, 32, 16, 14, 14),
		workload.NewConv2D("b2", 1, 16, 16, 14, 14, 3, 3),
		workload.NewPointwise("a3", 1, 32, 16, 14, 14),
	}}
	hw, sp := arch.InHouse(), arch.InHouseSpatial()
	opt := &Options{MaxCandidates: 400}

	h0 := memo.Default.Counters().Hits()
	cached, err := Evaluate(context.Background(), net, hw, sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Second cached run: everything hits.
	cached2, err := Evaluate(context.Background(), net, hw, sp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Default.Counters().Hits() == h0 {
		t.Fatal("no cache hits on a network with repeated shapes")
	}

	memo.Default.SetEnabled(false)
	defer memo.Default.SetEnabled(true)
	plain, err := Evaluate(context.Background(), net, hw, sp, opt)
	if err != nil {
		t.Fatal(err)
	}

	for name, r := range map[string]*Result{"cached": cached, "cached-rerun": cached2} {
		if r.TotalCC != plain.TotalCC || r.TotalPJ != plain.TotalPJ ||
			r.IdealCC != plain.IdealCC || r.PrefetchSavedCC != plain.PrefetchSavedCC {
			t.Fatalf("%s differs from uncached: total %v != %v, energy %v != %v",
				name, r.TotalCC, plain.TotalCC, r.TotalPJ, plain.TotalPJ)
		}
		for i := range r.Layers {
			c, p := &r.Layers[i], &plain.Layers[i]
			if c.EffectiveCC != p.EffectiveCC || c.EnergyPJ != p.EnergyPJ ||
				c.PrefetchSaved != p.PrefetchSaved || c.SpillCC != p.SpillCC {
				t.Fatalf("%s layer %d (%s): %v != %v", name, i, c.Original, c.EffectiveCC, p.EffectiveCC)
			}
			if c.Candidate.Mapping.Temporal.String() != p.Candidate.Mapping.Temporal.String() {
				t.Fatalf("%s layer %d picked a different mapping", name, i)
			}
		}
	}
}
