package network

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
)

// TestEnergyErrorSurfaced: a failing energy model must not fail the latency
// evaluation, but it must not silently report 0 pJ either — the error lands
// on the layer, EnergyPJ stays 0 and the layer is excluded from TotalPJ.
func TestEnergyErrorSurfaced(t *testing.T) {
	failErr := errors.New("injected energy failure")
	orig := energyEvaluate
	var calls atomic.Int64
	// Layers evaluate energy concurrently (par.ForEach), so fail exactly one
	// call by ticket; which layer draws it is irrelevant to the contract.
	energyEvaluate = func(p *core.Problem, tbl *energy.Table) (*energy.Breakdown, error) {
		if calls.Add(1) == 2 {
			return nil, failErr
		}
		return energy.Evaluate(p, tbl)
	}
	defer func() { energyEvaluate = orig }()

	n := smallNet()
	res, err := Evaluate(context.Background(), n, arch.InHouse(), arch.InHouseSpatial(), &Options{MaxCandidates: 500})
	if err != nil {
		t.Fatalf("Evaluate failed outright on an energy error: %v", err)
	}
	var failed, succeeded int
	var sum float64
	for i := range res.Layers {
		lr := &res.Layers[i]
		if lr.EnergyErr != nil {
			failed++
			if !errors.Is(lr.EnergyErr, failErr) {
				t.Errorf("layer %s: EnergyErr = %v, want wrapped %v", lr.Original, lr.EnergyErr, failErr)
			}
			if lr.EnergyPJ != 0 {
				t.Errorf("layer %s: failed energy still reports %v pJ", lr.Original, lr.EnergyPJ)
			}
		} else {
			succeeded++
			if lr.EnergyPJ <= 0 {
				t.Errorf("layer %s: no error but EnergyPJ = %v", lr.Original, lr.EnergyPJ)
			}
		}
		sum += lr.EnergyPJ
	}
	if failed != 1 {
		t.Fatalf("%d layers failed energy, want exactly 1 (injection fails the 2nd call)", failed)
	}
	if succeeded != len(res.Layers)-1 {
		t.Fatalf("%d layers succeeded, want %d", succeeded, len(res.Layers)-1)
	}
	if res.TotalPJ != sum {
		t.Errorf("TotalPJ = %v, want the sum of surviving layers %v", res.TotalPJ, sum)
	}
}
