// Package roofline provides the classic roofline sanity view on top of the
// detailed latency model: given a problem, it computes the compute roof
// (MACs/cycle), the bandwidth roof of each off-array port, the workload's
// operational intensity, and the resulting bound — a coarse cross-check
// that the detailed model's verdict (compute- vs bandwidth-bound) respects
// first principles, and a fast screening tool for DSE.
package roofline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/loops"
)

// Bound names the binding resource.
type Bound uint8

// Binding resources.
const (
	ComputeBound Bound = iota
	BandwidthBound
)

// String names the bound.
func (b Bound) String() string {
	if b == BandwidthBound {
		return "bandwidth-bound"
	}
	return "compute-bound"
}

// PortRoof is the minimum cycles one physical port needs to move the
// layer's total traffic through it.
type PortRoof struct {
	Port     string
	Bits     int64 // total bits the layer moves through the port
	BWBits   int64
	MinCC    float64
	Operands string // contributing operands, for reports
}

// Analysis is the roofline view of one problem.
type Analysis struct {
	// ComputeCC is Total MACs / array size.
	ComputeCC float64
	// Roofs are per-port minimum cycle counts, descending.
	Roofs []PortRoof
	// BoundCC = max(ComputeCC, worst roof): the roofline latency bound.
	BoundCC float64
	// Bound says which resource binds.
	Bound Bound
	// IntensityMACsPerByte is the operational intensity versus the
	// outermost (off-chip-facing) level.
	IntensityMACsPerByte float64
}

// Analyze computes the roofline bound for a problem. Traffic per port is
// derived from the same DTL decomposition the detailed model uses (so
// mapping-induced re-fetching is counted), but all scheduling effects —
// windows, contention order, buffering — are ignored: the result is a
// LOWER bound on the achievable latency.
func Analyze(p *core.Problem) (*Analysis, error) {
	eps, err := core.Endpoints(p)
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		ComputeCC: float64(p.Layer.TotalMACs()) / float64(p.Arch.MACs),
	}

	type acc struct {
		bits int64
		bw   int64
		ops  map[string]bool
	}
	perPort := map[string]*acc{}
	for _, e := range eps {
		mem := p.Arch.MemoryByName(e.MemName)
		key := fmt.Sprintf("%s.%s", e.MemName, mem.Ports[e.PortIdx].Name)
		pa, ok := perPort[key]
		if !ok {
			pa = &acc{bw: mem.Ports[e.PortIdx].BWBits, ops: map[string]bool{}}
			perPort[key] = pa
		}
		pa.bits += e.Z * e.MemData * int64(p.Layer.Precision.Bits(e.Operand))
		pa.ops[e.Operand.String()] = true
	}
	for key, pa := range perPort {
		var ops []string
		for o := range pa.ops {
			ops = append(ops, o)
		}
		sort.Strings(ops)
		a.Roofs = append(a.Roofs, PortRoof{
			Port:     key,
			Bits:     pa.bits,
			BWBits:   pa.bw,
			MinCC:    float64(pa.bits) / float64(pa.bw),
			Operands: strings.Join(ops, "+"),
		})
	}
	sort.Slice(a.Roofs, func(i, j int) bool {
		// Tie-break on the port name: Roofs comes from a map, so equal
		// MinCC entries would otherwise land in random iteration order.
		if a.Roofs[i].MinCC != a.Roofs[j].MinCC {
			return a.Roofs[i].MinCC > a.Roofs[j].MinCC
		}
		return a.Roofs[i].Port < a.Roofs[j].Port
	})

	a.BoundCC = a.ComputeCC
	a.Bound = ComputeBound
	if len(a.Roofs) > 0 && a.Roofs[0].MinCC > a.ComputeCC {
		a.BoundCC = a.Roofs[0].MinCC
		a.Bound = BandwidthBound
	}

	// Operational intensity vs the outermost level: MACs per byte moved
	// through any GB-class port (top of each operand's chain).
	topBits := int64(0)
	tops := map[string]bool{}
	for _, op := range loops.AllOperands {
		chain := p.Arch.Chain[op]
		tops[chain[len(chain)-1]] = true
	}
	for _, e := range eps {
		if tops[e.MemName] {
			topBits += e.Z * e.MemData * int64(p.Layer.Precision.Bits(e.Operand))
		}
	}
	if topBits > 0 {
		a.IntensityMACsPerByte = float64(p.Layer.TotalMACs()) / (float64(topBits) / 8)
	}
	return a, nil
}

// ConsistentWith checks the roofline bound against a detailed-model result:
// the detailed latency must never beat the bound (within epsilon for the
// preload/offload edges the roofline ignores).
func (a *Analysis) ConsistentWith(r *core.Result) bool {
	return r.CCTotal >= a.BoundCC*0.999
}

// Report renders the analysis.
func (a *Analysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "roofline: %s — bound %.0f cc (compute %.0f cc)\n", a.Bound, a.BoundCC, a.ComputeCC)
	fmt.Fprintf(&b, "  operational intensity: %.2f MACs/byte (vs outermost level)\n", a.IntensityMACsPerByte)
	for _, r := range a.Roofs {
		fmt.Fprintf(&b, "  %-14s %8d bits @ %4d bit/cc -> >= %8.0f cc (%s)\n",
			r.Port, r.Bits, r.BWBits, r.MinCC, r.Operands)
	}
	return b.String()
}
