package roofline

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/workload"
)

func searched(b, k, c int64, gbBW int64) (*core.Problem, *core.Result) {
	l := workload.NewMatMul("r", b, k, c)
	hw := arch.CaseStudy()
	gb := hw.MemoryByName("GB")
	for i := range gb.Ports {
		gb.Ports[i].BWBits = gbBW
	}
	best, _, err := mapper.Best(context.Background(), &l, hw, &mapper.Options{
		Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 2000,
	})
	if err != nil {
		panic(err)
	}
	return &core.Problem{Layer: &l, Arch: hw, Mapping: best.Mapping}, best.Result
}

func TestComputeBoundCase(t *testing.T) {
	// Deep reduction, generous GB: compute-bound.
	p, r := searched(128, 128, 512, 1024)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bound != ComputeBound {
		t.Errorf("bound = %s\n%s", a.Bound, a.Report())
	}
	if a.ComputeCC != 32768 {
		t.Errorf("compute roof = %v", a.ComputeCC)
	}
	if !a.ConsistentWith(r) {
		t.Errorf("detailed model (%v) beats the roofline bound (%v)", r.CCTotal, a.BoundCC)
	}
}

func TestBandwidthBoundCase(t *testing.T) {
	// Output-heavy, starved GB: bandwidth-bound.
	p, r := searched(512, 512, 8, 128)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bound != BandwidthBound {
		t.Errorf("bound = %s\n%s", a.Bound, a.Report())
	}
	if !a.ConsistentWith(r) {
		t.Errorf("detailed model (%v) beats the roofline bound (%v)", r.CCTotal, a.BoundCC)
	}
	// The binding port must be a GB port (the narrow link).
	if !strings.HasPrefix(a.Roofs[0].Port, "GB.") {
		t.Errorf("binding port = %s", a.Roofs[0].Port)
	}
}

func TestIntensity(t *testing.T) {
	p, _ := searched(128, 128, 128, 1024)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.IntensityMACsPerByte <= 0 {
		t.Fatal("no intensity computed")
	}
	// Measured intensity uses MAPPED traffic, which is at least the
	// compulsory traffic: intensity can never exceed the algorithmic
	// ceiling MACs / (total operand bytes).
	ceiling := float64(p.Layer.TotalMACs()) / (float64(p.Layer.TotalDataBits()) / 8)
	if a.IntensityMACsPerByte > ceiling+1e-9 {
		t.Errorf("intensity %v exceeds algorithmic ceiling %v", a.IntensityMACsPerByte, ceiling)
	}
}

func TestRooflineNeverAboveModel(t *testing.T) {
	// Across a grid of shapes and bandwidths, the roofline lower bound
	// must never exceed the detailed model's latency.
	for _, dims := range [][3]int64{{64, 64, 64}, {256, 64, 16}, {64, 256, 16}, {128, 128, 256}} {
		for _, bw := range []int64{64, 256, 1024} {
			p, r := searched(dims[0], dims[1], dims[2], bw)
			a, err := Analyze(p)
			if err != nil {
				t.Fatal(err)
			}
			if !a.ConsistentWith(r) {
				t.Errorf("dims %v bw %d: model %v < bound %v", dims, bw, r.CCTotal, a.BoundCC)
			}
		}
	}
}

func TestReportAndErrors(t *testing.T) {
	p, _ := searched(64, 64, 64, 256)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Report()
	for _, want := range []string{"roofline:", "operational intensity", "GB.rd"} {
		if !strings.Contains(s, want) {
			t.Errorf("report misses %q:\n%s", want, s)
		}
	}
	if _, err := Analyze(&core.Problem{}); err == nil {
		t.Error("nil problem analyzed")
	}
	if ComputeBound.String() != "compute-bound" || BandwidthBound.String() != "bandwidth-bound" {
		t.Error("bound names wrong")
	}
}
