package workload

import "fmt"

// HandTrackingSuite returns the validation workload: a hand-tracking CNN in
// the style of the SSD-MobileNet-based model of reference [19], expressed as
// the representative convolution and dense layers that are fed through
// Im2Col onto the accelerator (paper Fig. 5(c) runs "NN layers of different
// sizes" from this workload). Shapes cover small and large spatial extents,
// shallow and deep channel counts, and the final dense classifier so the
// validation exercises all stall regimes.
func HandTrackingSuite() []Layer {
	return []Layer{
		NewConv2D("conv1", 1, 32, 3, 112, 112, 3, 3),
		NewDepthwise("conv2_dw", 1, 32, 112, 112, 3, 3),
		NewPointwise("conv2_pw", 1, 64, 32, 112, 112),
		NewConv2D("conv3", 1, 64, 64, 56, 56, 3, 3),
		NewPointwise("conv4_pw", 1, 128, 64, 56, 56),
		NewConv2D("conv5", 1, 128, 128, 28, 28, 3, 3),
		NewPointwise("conv6_pw", 1, 256, 128, 28, 28),
		NewConv2D("conv7", 1, 256, 256, 14, 14, 3, 3),
		NewPointwise("conv8_pw", 1, 512, 256, 14, 14),
		NewConv2D("conv9", 1, 512, 512, 7, 7, 3, 3),
		NewConv2D("head_loc", 1, 24, 512, 7, 7, 3, 3),
		NewConv2D("head_cls", 1, 12, 512, 7, 7, 1, 1),
		NewDense("fc", 1, 1024, 512),
	}
}

// Case2Sweep returns the Case-2 workload grid (paper Fig. 7): matmul-form
// layers with B, K, C swept over {8 .. 512}. Each returned layer is named
// "(B,K,C)". The paper varies the three dimensions jointly to contrast
// output-dominant (large B,K, small C) against reduction-dominant (large C)
// layers; the canonical points called out in the text — (128,128,8) and
// (512,512,8) — are included.
func Case2Sweep() []Layer {
	points := [][3]int64{
		{8, 8, 8},
		{8, 32, 32},
		{32, 32, 8},
		{32, 32, 32},
		{32, 128, 32},
		{128, 128, 8},
		{128, 128, 32},
		{128, 128, 128},
		{512, 128, 8},
		{128, 512, 8},
		{512, 512, 8},
		{128, 128, 512},
		{512, 512, 128},
		{512, 512, 512},
	}
	out := make([]Layer, 0, len(points))
	for _, p := range points {
		out = append(out, NewMatMul(fmt.Sprintf("(%d,%d,%d)", p[0], p[1], p[2]), p[0], p[1], p[2]))
	}
	return out
}

// Case1Layer returns the layer used by Case study 1 (paper Fig. 6). The
// paper reports CC_ideal = 38400 on a 16x16-MAC array, i.e. a layer with
// 38400*256 = 9,830,400 MACs, consistent with a post-Im2Col matmul of
// B=120, K=640, C=128 — moderate batch rows, wide output channels and a
// reduction depth that makes the C-loop split between memory levels (the
// Mapping A/B difference) the deciding factor.
func Case1Layer() Layer {
	return NewMatMul("case1", 120, 640, 128)
}
