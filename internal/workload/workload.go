// Package workload defines dense DNN layer workloads — Conv2D, Dense,
// Depthwise and Pointwise layers — in the seven-dimensional loop form of
// package loops, together with the Im2Col lowering that the paper applies
// before running layers on the matrix-multiply-style in-house accelerator,
// and the layer suites used by the validation and case-study experiments.
package workload

import (
	"fmt"

	"repro/internal/loops"
)

// Kind enumerates the supported layer types (paper Section II-A-1).
type Kind uint8

// Supported layer kinds.
const (
	Conv2D Kind = iota
	Dense
	Depthwise
	Pointwise
	MatMul // already-lowered matrix multiply (the post-Im2Col form)
)

var kindNames = map[Kind]string{
	Conv2D:    "Conv2D",
	Dense:     "Dense",
	Depthwise: "Depthwise",
	Pointwise: "Pointwise",
	MatMul:    "MatMul",
}

// String returns the layer kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Precision holds the bit width of each operand's data elements.
type Precision struct {
	W, I, O int // bits per element
}

// DefaultPrecision is the INT8 inference configuration of the in-house
// accelerator: 8b weights, 8b inputs, 24b (partial) outputs.
var DefaultPrecision = Precision{W: 8, I: 8, O: 24}

// Bits returns the element width of operand op.
func (p Precision) Bits(op loops.Operand) int {
	switch op {
	case loops.W:
		return p.W
	case loops.I:
		return p.I
	case loops.O:
		return p.O
	}
	panic("workload: Precision.Bits: unknown operand")
}

// Validate reports an error for non-positive widths.
func (p Precision) Validate() error {
	if p.W <= 0 || p.I <= 0 || p.O <= 0 {
		return fmt.Errorf("workload: non-positive precision %+v", p)
	}
	return nil
}

// Layer is one dense DNN layer expressed over the seven canonical loop
// dimensions. A dimension not used by the layer kind has extent 1.
type Layer struct {
	Name string
	Kind Kind

	// Dims holds the full extent of each canonical dimension.
	Dims [loops.NumDims]int64

	// Strides describes convolution stride/dilation (Conv2D/Depthwise).
	Strides loops.Strides

	// Precision gives per-operand element widths in bits.
	Precision Precision
}

// Dim returns the extent of dimension d (>= 1).
func (l *Layer) Dim(d loops.Dim) int64 {
	v := l.Dims[d]
	if v < 1 {
		return 1
	}
	return v
}

// setDefaults fills zero dims with 1 and zero precision with the default.
func (l *Layer) setDefaults() {
	for i, v := range l.Dims {
		if v < 1 {
			l.Dims[i] = 1
		}
	}
	if l.Precision == (Precision{}) {
		l.Precision = DefaultPrecision
	}
	l.Strides = normalizedStrides(l.Strides)
}

func normalizedStrides(s loops.Strides) loops.Strides {
	if s.SX == 0 {
		s.SX = 1
	}
	if s.SY == 0 {
		s.SY = 1
	}
	if s.DX == 0 {
		s.DX = 1
	}
	if s.DY == 0 {
		s.DY = 1
	}
	return s
}

// Validate checks dimension extents and kind-specific constraints.
func (l *Layer) Validate() error {
	for _, d := range loops.AllDims {
		if l.Dims[d] < 1 {
			return fmt.Errorf("workload: layer %q: dimension %s has extent %d", l.Name, d, l.Dims[d])
		}
	}
	if err := l.Precision.Validate(); err != nil {
		return fmt.Errorf("workload: layer %q: %w", l.Name, err)
	}
	switch l.Kind {
	case Dense, MatMul:
		for _, d := range []loops.Dim{loops.OY, loops.OX, loops.FY, loops.FX} {
			if l.Dims[d] != 1 {
				return fmt.Errorf("workload: layer %q: %s layer must have %s=1, got %d", l.Name, l.Kind, d, l.Dims[d])
			}
		}
	case Pointwise:
		if l.Dims[loops.FY] != 1 || l.Dims[loops.FX] != 1 {
			return fmt.Errorf("workload: layer %q: pointwise layer must have FY=FX=1", l.Name)
		}
	case Depthwise:
		if l.Dims[loops.K] != 1 && l.Dims[loops.C] != 1 {
			return fmt.Errorf("workload: layer %q: depthwise layer must have K=1 or C=1 (per-channel form)", l.Name)
		}
	case Conv2D:
		// no extra constraints
	default:
		return fmt.Errorf("workload: layer %q: unknown kind %d", l.Name, uint8(l.Kind))
	}
	return nil
}

// TotalMACs returns the total number of multiply-accumulate operations of
// the layer: the product of all seven dimension extents.
func (l *Layer) TotalMACs() int64 {
	p := int64(1)
	for _, d := range loops.AllDims {
		p *= l.Dim(d)
	}
	return p
}

// OperandElems returns the total number of data elements of operand op.
func (l *Layer) OperandElems(op loops.Operand) int64 {
	var dims [loops.NumDims]int64
	for _, d := range loops.AllDims {
		dims[d] = l.Dim(d)
	}
	return loops.TileElems(op, dims, l.Strides)
}

// OperandBits returns the total data size of operand op in bits.
func (l *Layer) OperandBits(op loops.Operand) int64 {
	return l.OperandElems(op) * int64(l.Precision.Bits(op))
}

// TotalDataBits returns the summed data size of W, I and O in bits.
func (l *Layer) TotalDataBits() int64 {
	var t int64
	for _, op := range loops.AllOperands {
		t += l.OperandBits(op)
	}
	return t
}

// String renders the layer compactly, e.g.
// "conv3 Conv2D[B1 K64 C32 OY28 OX28 FY3 FX3]".
func (l *Layer) String() string {
	s := l.Name + " " + l.Kind.String() + "["
	for i, d := range loops.AllDims {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s%d", d, l.Dim(d))
	}
	return s + "]"
}

// NewConv2D constructs a convolution layer. Zero-valued dims become 1.
func NewConv2D(name string, b, k, c, oy, ox, fy, fx int64) Layer {
	l := Layer{Name: name, Kind: Conv2D}
	l.Dims[loops.B] = b
	l.Dims[loops.K] = k
	l.Dims[loops.C] = c
	l.Dims[loops.OY] = oy
	l.Dims[loops.OX] = ox
	l.Dims[loops.FY] = fy
	l.Dims[loops.FX] = fx
	l.setDefaults()
	return l
}

// NewDense constructs a fully connected layer: B batches of a K×C matrix-
// vector product.
func NewDense(name string, b, k, c int64) Layer {
	l := Layer{Name: name, Kind: Dense}
	l.Dims[loops.B] = b
	l.Dims[loops.K] = k
	l.Dims[loops.C] = c
	l.setDefaults()
	return l
}

// NewMatMul constructs an already-lowered matrix multiply with M=b rows,
// N=k columns and reduction depth c.
func NewMatMul(name string, b, k, c int64) Layer {
	l := Layer{Name: name, Kind: MatMul}
	l.Dims[loops.B] = b
	l.Dims[loops.K] = k
	l.Dims[loops.C] = c
	l.setDefaults()
	return l
}

// NewPointwise constructs a 1x1 convolution layer.
func NewPointwise(name string, b, k, c, oy, ox int64) Layer {
	l := Layer{Name: name, Kind: Pointwise}
	l.Dims[loops.B] = b
	l.Dims[loops.K] = k
	l.Dims[loops.C] = c
	l.Dims[loops.OY] = oy
	l.Dims[loops.OX] = ox
	l.setDefaults()
	return l
}

// NewDepthwise constructs a depthwise convolution layer over c channels.
func NewDepthwise(name string, b, c, oy, ox, fy, fx int64) Layer {
	l := Layer{Name: name, Kind: Depthwise}
	l.Dims[loops.B] = b
	l.Dims[loops.C] = c
	l.Dims[loops.OY] = oy
	l.Dims[loops.OX] = ox
	l.Dims[loops.FY] = fy
	l.Dims[loops.FX] = fx
	l.setDefaults()
	return l
}

// Im2Col lowers a convolution-family layer to the matrix-multiply form that
// the in-house accelerator executes (paper Section IV: "Im2Col operation —
// unrolling convolution into matrix-matrix multiplication — is performed by
// a RISC-V core before processing on the accelerator").
//
// The lowering maps
//
//	M (rows)      = B*OY*OX  -> B
//	N (cols)      = K        -> K
//	depth (red.)  = C*FY*FX  -> C
//
// so that after lowering only the B, K, C dimensions are non-trivial and all
// operand relevance relations of the matmul hold exactly (input duplication
// introduced by Im2Col is accounted by the enlarged I size). Layers that are
// already Dense/MatMul are returned unchanged apart from the kind.
func Im2Col(l Layer) Layer {
	l.setDefaults()
	out := Layer{
		Name:      l.Name,
		Kind:      MatMul,
		Precision: l.Precision,
		Strides:   loops.DefaultStrides(),
	}
	for i := range out.Dims {
		out.Dims[i] = 1
	}
	out.Dims[loops.B] = l.Dim(loops.B) * l.Dim(loops.OY) * l.Dim(loops.OX)
	out.Dims[loops.K] = l.Dim(loops.K)
	out.Dims[loops.C] = l.Dim(loops.C) * l.Dim(loops.FY) * l.Dim(loops.FX)
	return out
}
