// Package workload defines dense DNN layer workloads — Conv2D, Dense,
// Depthwise and Pointwise layers — in the seven-dimensional loop form of
// package loops, together with the Im2Col lowering that the paper applies
// before running layers on the matrix-multiply-style in-house accelerator,
// and the layer suites used by the validation and case-study experiments.
package workload

import (
	"fmt"

	"repro/internal/loops"
)

// Kind enumerates the supported layer types (paper Section II-A-1), plus
// the transformer-block operators of internal/transformer: two head-batched
// attention matmul kinds and four bandwidth-bound elementwise kinds.
type Kind uint8

// Supported layer kinds.
const (
	Conv2D Kind = iota
	Dense
	Depthwise
	Pointwise
	MatMul // already-lowered matrix multiply (the post-Im2Col form)

	// AttnScore is the per-head attention score matmul Q·K^T: B = query
	// rows, K = key/context length, C = head dimension. The seven dims
	// describe ONE head; Heads repeats it (all three operands are
	// head-indexed, which the seven-dimensional form cannot express in a
	// single nest — see DESIGN.md §15).
	AttnScore
	// AttnCtx is the per-head attention context matmul scores·V: B = query
	// rows, K = head dimension, C = key/context length. In decode mode the
	// W operand (K*C elements) is exactly the per-head V-cache read.
	AttnCtx

	// Elementwise kinds: bandwidth-bound tensor passes priced by byte
	// traffic instead of a mapping search. B = rows, C = columns; all
	// other dims must be 1; Heads repeats the pass per attention head.
	LayerNorm   // 2 read passes (statistics + normalize) + γ/β params, 1 write pass
	Softmax     // 3 read passes (max, exp-sum, normalize), 1 write pass
	GeLU        // 1 read pass, 1 write pass (any pointwise activation)
	ResidualAdd // 2 read passes (both addends), 1 write pass
)

var kindNames = map[Kind]string{
	Conv2D:      "Conv2D",
	Dense:       "Dense",
	Depthwise:   "Depthwise",
	Pointwise:   "Pointwise",
	MatMul:      "MatMul",
	AttnScore:   "AttnScore",
	AttnCtx:     "AttnCtx",
	LayerNorm:   "LayerNorm",
	Softmax:     "Softmax",
	GeLU:        "GeLU",
	ResidualAdd: "ResidualAdd",
}

// String returns the layer kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MatmulShaped reports whether layers of this kind run on the MAC array
// through the mapper and the intra-layer latency model (possibly after
// Im2Col lowering).
func (k Kind) MatmulShaped() bool {
	switch k {
	case Conv2D, Dense, Depthwise, Pointwise, MatMul, AttnScore, AttnCtx:
		return true
	}
	return false
}

// Elementwise reports whether layers of this kind are bandwidth-bound
// elementwise passes (no MACs, no mapping search).
func (k Kind) Elementwise() bool {
	switch k {
	case LayerNorm, Softmax, GeLU, ResidualAdd:
		return true
	}
	return false
}

// ElemwisePasses returns how many full passes over the input tensor an
// elementwise kind reads and how many passes over the output it writes —
// the exact byte-traffic accounting of DESIGN.md §15 (no operator fusion
// is assumed; every pass streams through the outermost memory).
func (k Kind) ElemwisePasses() (readPasses, writePasses int) {
	switch k {
	case LayerNorm:
		return 2, 1 // mean/var pass, then normalize
	case Softmax:
		return 3, 1 // running max, exp-sum, normalize
	case GeLU:
		return 1, 1
	case ResidualAdd:
		return 2, 1 // both addends stream in
	}
	return 0, 0
}

// Precision holds the bit width of each operand's data elements.
type Precision struct {
	W, I, O int // bits per element
}

// DefaultPrecision is the INT8 inference configuration of the in-house
// accelerator: 8b weights, 8b inputs, 24b (partial) outputs.
var DefaultPrecision = Precision{W: 8, I: 8, O: 24}

// Bits returns the element width of operand op.
func (p Precision) Bits(op loops.Operand) int {
	switch op {
	case loops.W:
		return p.W
	case loops.I:
		return p.I
	case loops.O:
		return p.O
	}
	panic("workload: Precision.Bits: unknown operand")
}

// Validate reports an error for non-positive widths.
func (p Precision) Validate() error {
	if p.W <= 0 || p.I <= 0 || p.O <= 0 {
		return fmt.Errorf("workload: non-positive precision %+v", p)
	}
	return nil
}

// Layer is one dense DNN layer expressed over the seven canonical loop
// dimensions. A dimension not used by the layer kind has extent 1.
type Layer struct {
	Name string
	Kind Kind

	// Dims holds the full extent of each canonical dimension.
	Dims [loops.NumDims]int64

	// Strides describes convolution stride/dilation (Conv2D/Depthwise).
	Strides loops.Strides

	// Precision gives per-operand element widths in bits.
	Precision Precision

	// Heads is the head-batch multiplicity of the attention kinds
	// (AttnScore/AttnCtx) and of per-head elementwise passes (Softmax over
	// attention scores): the seven dims describe ONE head and the full
	// operator repeats them Heads times with all operands head-indexed.
	// The intra-layer model prices one head (TotalMACs, the mapper and the
	// simulator all see the per-head problem); whole-operator totals
	// (WorkMACs, OperandElems, network evaluation) scale by HeadCount.
	// Zero means 1 (unbatched). Must be 1 (or 0) for the classic kinds.
	Heads int64
}

// HeadCount returns the head-batch multiplicity (>= 1).
func (l *Layer) HeadCount() int64 {
	if l.Heads < 1 {
		return 1
	}
	return l.Heads
}

// Dim returns the extent of dimension d (>= 1).
func (l *Layer) Dim(d loops.Dim) int64 {
	v := l.Dims[d]
	if v < 1 {
		return 1
	}
	return v
}

// setDefaults fills zero dims with 1 and zero precision with the default.
func (l *Layer) setDefaults() {
	for i, v := range l.Dims {
		if v < 1 {
			l.Dims[i] = 1
		}
	}
	if l.Precision == (Precision{}) {
		l.Precision = DefaultPrecision
	}
	l.Strides = normalizedStrides(l.Strides)
}

func normalizedStrides(s loops.Strides) loops.Strides {
	if s.SX == 0 {
		s.SX = 1
	}
	if s.SY == 0 {
		s.SY = 1
	}
	if s.DX == 0 {
		s.DX = 1
	}
	if s.DY == 0 {
		s.DY = 1
	}
	return s
}

// Validate checks dimension extents and kind-specific constraints.
func (l *Layer) Validate() error {
	for _, d := range loops.AllDims {
		if l.Dims[d] < 1 {
			return fmt.Errorf("workload: layer %q: dimension %s has extent %d", l.Name, d, l.Dims[d])
		}
	}
	if err := l.Precision.Validate(); err != nil {
		return fmt.Errorf("workload: layer %q: %w", l.Name, err)
	}
	if l.Heads < 0 {
		return fmt.Errorf("workload: layer %q: negative head count %d", l.Name, l.Heads)
	}
	if l.Heads > 1 {
		switch l.Kind {
		case AttnScore, AttnCtx, LayerNorm, Softmax, GeLU, ResidualAdd:
			// head batching applies
		default:
			return fmt.Errorf("workload: layer %q: kind %s does not support Heads=%d", l.Name, l.Kind, l.Heads)
		}
	}
	switch l.Kind {
	case Dense, MatMul, AttnScore, AttnCtx:
		for _, d := range []loops.Dim{loops.OY, loops.OX, loops.FY, loops.FX} {
			if l.Dims[d] != 1 {
				return fmt.Errorf("workload: layer %q: %s layer must have %s=1, got %d", l.Name, l.Kind, d, l.Dims[d])
			}
		}
	case LayerNorm, Softmax, GeLU, ResidualAdd:
		for _, d := range []loops.Dim{loops.K, loops.OY, loops.OX, loops.FY, loops.FX} {
			if l.Dims[d] != 1 {
				return fmt.Errorf("workload: layer %q: elementwise %s layer must have %s=1, got %d", l.Name, l.Kind, d, l.Dims[d])
			}
		}
	case Pointwise:
		if l.Dims[loops.FY] != 1 || l.Dims[loops.FX] != 1 {
			return fmt.Errorf("workload: layer %q: pointwise layer must have FY=FX=1", l.Name)
		}
	case Depthwise:
		if l.Dims[loops.K] != 1 && l.Dims[loops.C] != 1 {
			return fmt.Errorf("workload: layer %q: depthwise layer must have K=1 or C=1 (per-channel form)", l.Name)
		}
	case Conv2D:
		// no extra constraints
	default:
		return fmt.Errorf("workload: layer %q: unknown kind %d", l.Name, uint8(l.Kind))
	}
	return nil
}

// TotalMACs returns the number of multiply-accumulate operations of the
// PER-HEAD problem the intra-layer model prices: the product of all seven
// dimension extents. The mapper, the core model and the simulator all
// consume this per-head view; use WorkMACs for whole-operator arithmetic
// totals (head-scaled, zero for elementwise kinds).
func (l *Layer) TotalMACs() int64 {
	p := int64(1)
	for _, d := range loops.AllDims {
		p *= l.Dim(d)
	}
	return p
}

// WorkMACs returns the whole-operator multiply-accumulate count: the
// per-head MACs times the head multiplicity, and 0 for elementwise kinds
// (which perform no MACs — their dim product counts tensor elements).
func (l *Layer) WorkMACs() int64 {
	if l.Kind.Elementwise() {
		return 0
	}
	return l.TotalMACs() * l.HeadCount()
}

// ElemwiseParamElems returns the number of resident parameter elements an
// elementwise kind reads once per pass set (LayerNorm's γ/β vectors); zero
// for parameter-free kinds and for non-elementwise layers.
func (l *Layer) ElemwiseParamElems() int64 {
	if l.Kind == LayerNorm {
		return 2 * l.Dim(loops.C)
	}
	return 0
}

// OperandElems returns the total number of data elements of operand op for
// the WHOLE operator (all heads). For matmul-shaped kinds this is the
// per-head tile size times HeadCount; for elementwise kinds I and O are the
// full B×C tensor per head and W holds the resident parameters.
func (l *Layer) OperandElems(op loops.Operand) int64 {
	if l.Kind.Elementwise() {
		switch op {
		case loops.W:
			return l.ElemwiseParamElems()
		case loops.I, loops.O:
			return l.Dim(loops.B) * l.Dim(loops.C) * l.HeadCount()
		}
	}
	var dims [loops.NumDims]int64
	for _, d := range loops.AllDims {
		dims[d] = l.Dim(d)
	}
	return loops.TileElems(op, dims, l.Strides) * l.HeadCount()
}

// OperandBits returns the total data size of operand op in bits.
func (l *Layer) OperandBits(op loops.Operand) int64 {
	return l.OperandElems(op) * int64(l.Precision.Bits(op))
}

// TotalDataBits returns the summed data size of W, I and O in bits.
func (l *Layer) TotalDataBits() int64 {
	var t int64
	for _, op := range loops.AllOperands {
		t += l.OperandBits(op)
	}
	return t
}

// String renders the layer compactly, e.g.
// "conv3 Conv2D[B1 K64 C32 OY28 OX28 FY3 FX3]"; head-batched layers gain an
// "xH" multiplicity suffix.
func (l *Layer) String() string {
	s := l.Name + " " + l.Kind.String() + "["
	for i, d := range loops.AllDims {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s%d", d, l.Dim(d))
	}
	s += "]"
	if l.HeadCount() > 1 {
		s += fmt.Sprintf("x%d", l.HeadCount())
	}
	return s
}

// NewConv2D constructs a convolution layer. Zero-valued dims become 1.
func NewConv2D(name string, b, k, c, oy, ox, fy, fx int64) Layer {
	l := Layer{Name: name, Kind: Conv2D}
	l.Dims[loops.B] = b
	l.Dims[loops.K] = k
	l.Dims[loops.C] = c
	l.Dims[loops.OY] = oy
	l.Dims[loops.OX] = ox
	l.Dims[loops.FY] = fy
	l.Dims[loops.FX] = fx
	l.setDefaults()
	return l
}

// NewDense constructs a fully connected layer: B batches of a K×C matrix-
// vector product.
func NewDense(name string, b, k, c int64) Layer {
	l := Layer{Name: name, Kind: Dense}
	l.Dims[loops.B] = b
	l.Dims[loops.K] = k
	l.Dims[loops.C] = c
	l.setDefaults()
	return l
}

// NewMatMul constructs an already-lowered matrix multiply with M=b rows,
// N=k columns and reduction depth c.
func NewMatMul(name string, b, k, c int64) Layer {
	l := Layer{Name: name, Kind: MatMul}
	l.Dims[loops.B] = b
	l.Dims[loops.K] = k
	l.Dims[loops.C] = c
	l.setDefaults()
	return l
}

// NewPointwise constructs a 1x1 convolution layer.
func NewPointwise(name string, b, k, c, oy, ox int64) Layer {
	l := Layer{Name: name, Kind: Pointwise}
	l.Dims[loops.B] = b
	l.Dims[loops.K] = k
	l.Dims[loops.C] = c
	l.Dims[loops.OY] = oy
	l.Dims[loops.OX] = ox
	l.setDefaults()
	return l
}

// NewDepthwise constructs a depthwise convolution layer over c channels.
func NewDepthwise(name string, b, c, oy, ox, fy, fx int64) Layer {
	l := Layer{Name: name, Kind: Depthwise}
	l.Dims[loops.B] = b
	l.Dims[loops.C] = c
	l.Dims[loops.OY] = oy
	l.Dims[loops.OX] = ox
	l.Dims[loops.FY] = fy
	l.Dims[loops.FX] = fx
	l.setDefaults()
	return l
}

// NewAttnScore constructs the per-head attention score matmul Q·K^T over
// heads heads: rows = query positions, keyLen = key/context length, dHead =
// head dimension.
func NewAttnScore(name string, rows, keyLen, dHead, heads int64) Layer {
	l := Layer{Name: name, Kind: AttnScore, Heads: heads}
	l.Dims[loops.B] = rows
	l.Dims[loops.K] = keyLen
	l.Dims[loops.C] = dHead
	l.setDefaults()
	return l
}

// NewAttnCtx constructs the per-head attention context matmul scores·V over
// heads heads: rows = query positions, dHead = head dimension, keyLen =
// key/context length (the reduction depth).
func NewAttnCtx(name string, rows, dHead, keyLen, heads int64) Layer {
	l := Layer{Name: name, Kind: AttnCtx, Heads: heads}
	l.Dims[loops.B] = rows
	l.Dims[loops.K] = dHead
	l.Dims[loops.C] = keyLen
	l.setDefaults()
	return l
}

// NewElemwise constructs a bandwidth-bound elementwise pass of the given
// kind over a rows×cols tensor, repeated heads times (heads <= 1 for the
// unbatched token-stream ops).
func NewElemwise(kind Kind, name string, rows, cols, heads int64) Layer {
	l := Layer{Name: name, Kind: kind, Heads: heads}
	l.Dims[loops.B] = rows
	l.Dims[loops.C] = cols
	l.setDefaults()
	return l
}

// Im2Col lowers a convolution-family layer to the matrix-multiply form that
// the in-house accelerator executes (paper Section IV: "Im2Col operation —
// unrolling convolution into matrix-matrix multiplication — is performed by
// a RISC-V core before processing on the accelerator").
//
// The lowering maps
//
//	M (rows)      = B*OY*OX  -> B
//	N (cols)      = K        -> K
//	depth (red.)  = C*FY*FX  -> C
//
// so that after lowering only the B, K, C dimensions are non-trivial and all
// operand relevance relations of the matmul hold exactly (input duplication
// introduced by Im2Col is accounted by the enlarged I size). Layers that are
// already Dense/MatMul are returned unchanged apart from the kind.
// Attention and elementwise kinds pass through untouched: the attention
// matmuls are already in B/K/C form (per head) and elementwise passes never
// run on the MAC array.
func Im2Col(l Layer) Layer {
	l.setDefaults()
	switch l.Kind {
	case AttnScore, AttnCtx, LayerNorm, Softmax, GeLU, ResidualAdd:
		return l
	}
	out := Layer{
		Name:      l.Name,
		Kind:      MatMul,
		Precision: l.Precision,
		Strides:   loops.DefaultStrides(),
	}
	for i := range out.Dims {
		out.Dims[i] = 1
	}
	out.Dims[loops.B] = l.Dim(loops.B) * l.Dim(loops.OY) * l.Dim(loops.OX)
	out.Dims[loops.K] = l.Dim(loops.K)
	out.Dims[loops.C] = l.Dim(loops.C) * l.Dim(loops.FY) * l.Dim(loops.FX)
	return out
}
