package workload

// This file defines additional whole-network layer suites for the
// cross-layer experiments. Shapes follow the published architectures;
// repeated blocks are unrolled explicitly so per-layer results line up
// with the usual layer tables.

// ResNet18Suite returns the convolutional backbone of ResNet-18 at
// 224x224 input (batch 1): the 7x7 stem, four double-block stages with
// stride-2 transitions (projection shortcuts included as pointwise
// layers), and the final classifier.
func ResNet18Suite() []Layer {
	var ls []Layer
	add := func(l Layer) { ls = append(ls, l) }

	stem := NewConv2D("conv1", 1, 64, 3, 112, 112, 7, 7)
	stem.Strides.SX, stem.Strides.SY = 2, 2
	add(stem)

	// Stage 1: 64ch, 56x56.
	for i := 1; i <= 4; i++ {
		add(NewConv2D(name("conv2", i), 1, 64, 64, 56, 56, 3, 3))
	}
	// Stage 2: 128ch, 28x28 (first conv strided, projection shortcut).
	tr2 := NewConv2D("conv3_1", 1, 128, 64, 28, 28, 3, 3)
	tr2.Strides.SX, tr2.Strides.SY = 2, 2
	add(tr2)
	add(NewPointwise("conv3_proj", 1, 128, 64, 28, 28))
	for i := 2; i <= 4; i++ {
		add(NewConv2D(name("conv3", i), 1, 128, 128, 28, 28, 3, 3))
	}
	// Stage 3: 256ch, 14x14.
	tr3 := NewConv2D("conv4_1", 1, 256, 128, 14, 14, 3, 3)
	tr3.Strides.SX, tr3.Strides.SY = 2, 2
	add(tr3)
	add(NewPointwise("conv4_proj", 1, 256, 128, 14, 14))
	for i := 2; i <= 4; i++ {
		add(NewConv2D(name("conv4", i), 1, 256, 256, 14, 14, 3, 3))
	}
	// Stage 4: 512ch, 7x7.
	tr4 := NewConv2D("conv5_1", 1, 512, 256, 7, 7, 3, 3)
	tr4.Strides.SX, tr4.Strides.SY = 2, 2
	add(tr4)
	add(NewPointwise("conv5_proj", 1, 512, 256, 7, 7))
	for i := 2; i <= 4; i++ {
		add(NewConv2D(name("conv5", i), 1, 512, 512, 7, 7, 3, 3))
	}
	add(NewDense("fc", 1, 1000, 512))
	return ls
}

// VGG16Suite returns the 13 convolution layers and 3 dense layers of
// VGG-16 at 224x224 input (batch 1) — the classic compute-heavy,
// weight-heavy counterpoint to the MobileNet-style hand-tracking suite.
func VGG16Suite() []Layer {
	var ls []Layer
	add := func(l Layer) { ls = append(ls, l) }
	add(NewConv2D("conv1_1", 1, 64, 3, 224, 224, 3, 3))
	add(NewConv2D("conv1_2", 1, 64, 64, 224, 224, 3, 3))
	add(NewConv2D("conv2_1", 1, 128, 64, 112, 112, 3, 3))
	add(NewConv2D("conv2_2", 1, 128, 128, 112, 112, 3, 3))
	add(NewConv2D("conv3_1", 1, 256, 128, 56, 56, 3, 3))
	add(NewConv2D("conv3_2", 1, 256, 256, 56, 56, 3, 3))
	add(NewConv2D("conv3_3", 1, 256, 256, 56, 56, 3, 3))
	add(NewConv2D("conv4_1", 1, 512, 256, 28, 28, 3, 3))
	add(NewConv2D("conv4_2", 1, 512, 512, 28, 28, 3, 3))
	add(NewConv2D("conv4_3", 1, 512, 512, 28, 28, 3, 3))
	add(NewConv2D("conv5_1", 1, 512, 512, 14, 14, 3, 3))
	add(NewConv2D("conv5_2", 1, 512, 512, 14, 14, 3, 3))
	add(NewConv2D("conv5_3", 1, 512, 512, 14, 14, 3, 3))
	add(NewDense("fc6", 1, 4096, 512*7*7))
	add(NewDense("fc7", 1, 4096, 4096))
	add(NewDense("fc8", 1, 1000, 4096))
	return ls
}

func name(prefix string, i int) string {
	return prefix + "_" + string(rune('0'+i))
}

// MobileNetV2Suite returns the inverted-residual backbone of MobileNetV2 at
// 224x224 (batch 1): expansion pointwise, depthwise and projection
// pointwise per block, with the stage widths of the published architecture.
func MobileNetV2Suite() []Layer {
	var ls []Layer
	add := func(l Layer) { ls = append(ls, l) }
	stem := NewConv2D("conv0", 1, 32, 3, 112, 112, 3, 3)
	stem.Strides.SX, stem.Strides.SY = 2, 2
	add(stem)

	// One inverted residual block: expand (1x1), depthwise (3x3, stride
	// s), project (1x1). Repeats share spatial extents.
	block := func(tag string, cin, cout, expand, oy int64, stride int64, reps int) {
		for r := 0; r < reps; r++ {
			in := cin
			s := stride
			if r > 0 {
				in = cout
				s = 1
			}
			hidden := in * expand
			if expand > 1 {
				iy := oy
				if s > 1 && r == 0 {
					iy = oy * s
				}
				add(NewPointwise(tag+string(rune('a'+r))+"_exp", 1, hidden, in, iy, iy))
			}
			dw := NewDepthwise(tag+string(rune('a'+r))+"_dw", 1, hidden, oy, oy, 3, 3)
			if s > 1 && r == 0 {
				dw.Strides.SX, dw.Strides.SY = s, s
			}
			add(dw)
			add(NewPointwise(tag+string(rune('a'+r))+"_proj", 1, cout, hidden, oy, oy))
		}
	}
	block("b1", 32, 16, 1, 112, 1, 1)
	block("b2", 16, 24, 6, 56, 2, 2)
	block("b3", 24, 32, 6, 28, 2, 3)
	block("b4", 32, 64, 6, 14, 2, 4)
	block("b5", 64, 96, 6, 14, 1, 3)
	block("b6", 96, 160, 6, 7, 2, 3)
	block("b7", 160, 320, 6, 7, 1, 1)
	add(NewPointwise("conv_last", 1, 1280, 320, 7, 7))
	add(NewDense("fc", 1, 1000, 1280))
	return ls
}
