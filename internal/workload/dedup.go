package workload

import (
	"encoding/binary"

	"repro/internal/loops"
)

// AppendShapeKey appends a canonical binary encoding of the layer's SHAPE —
// kind, dimension extents, strides and precision, but NOT the name — to dst
// and returns the extended slice. Two layers with equal shape keys are
// interchangeable for every model in this repository (latency, energy, area,
// mapping search): all of them consume only the encoded fields. The encoding
// is stable across processes, so it can key on-disk caches.
func (l *Layer) AppendShapeKey(dst []byte) []byte {
	dst = append(dst, byte(l.Kind))
	var buf [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		dst = append(dst, buf[:n]...)
	}
	for _, d := range loops.AllDims {
		put(l.Dim(d))
	}
	s := l.Strides
	if s.SX == 0 {
		s.SX = 1
	}
	if s.SY == 0 {
		s.SY = 1
	}
	if s.DX == 0 {
		s.DX = 1
	}
	if s.DY == 0 {
		s.DY = 1
	}
	put(s.SX)
	put(s.SY)
	put(s.DX)
	put(s.DY)
	p := l.Precision
	if p == (Precision{}) {
		p = DefaultPrecision
	}
	put(int64(p.W))
	put(int64(p.I))
	put(int64(p.O))
	// Head-batch multiplicity (transformer attention kinds): two operators
	// with identical per-head dims but different head counts do different
	// total work and must not coalesce. Encoded as HeadCount so the zero
	// value keys identically to an explicit Heads=1.
	put(l.HeadCount())
	return dst
}

// ShapeKey returns AppendShapeKey's encoding as a string, usable as a map
// key.
func (l *Layer) ShapeKey() string {
	return string(l.AppendShapeKey(nil))
}

// DedupLayers groups layers by shape (ShapeKey — name-insensitive): it
// returns the unique shapes in first-appearance order, each shape's
// multiplicity, and a per-input index into the unique list. Real DNNs repeat
// layer shapes heavily (ResNet runs the same conv dozens of times), so
// drivers that price each unique shape once and multiply save the
// repetition factor — the same reuse the memoized search (mapper.BestCached)
// exploits automatically.
func DedupLayers(layers []Layer) (unique []Layer, mult []int, index []int) {
	byKey := make(map[string]int, len(layers))
	index = make([]int, len(layers))
	var keyBuf []byte
	for i := range layers {
		keyBuf = layers[i].AppendShapeKey(keyBuf[:0])
		u, ok := byKey[string(keyBuf)]
		if !ok {
			u = len(unique)
			byKey[string(keyBuf)] = u
			unique = append(unique, layers[i])
			mult = append(mult, 0)
		}
		mult[u]++
		index[i] = u
	}
	return unique, mult, index
}
