package workload

import (
	"testing"

	"repro/internal/loops"
)

// TestDedupLayersRepeatedShapes: a network with repeated shapes (differently
// named, like a ResNet's residual stages) collapses to the unique shapes in
// first-appearance order with the right multiplicities.
func TestDedupLayersRepeatedShapes(t *testing.T) {
	layers := []Layer{
		NewConv2D("conv1", 1, 64, 3, 112, 112, 7, 7),
		NewConv2D("conv2_1", 1, 64, 64, 56, 56, 3, 3),
		NewConv2D("conv2_2", 1, 64, 64, 56, 56, 3, 3), // repeat of conv2_1
		NewPointwise("pw1", 1, 128, 64, 28, 28),
		NewConv2D("conv2_3", 1, 64, 64, 56, 56, 3, 3), // repeat of conv2_1
		NewPointwise("pw2", 1, 128, 64, 28, 28),       // repeat of pw1
	}
	unique, mult, index := DedupLayers(layers)

	if len(unique) != 3 {
		t.Fatalf("unique shapes = %d, want 3", len(unique))
	}
	wantNames := []string{"conv1", "conv2_1", "pw1"} // first appearance wins
	for i, n := range wantNames {
		if unique[i].Name != n {
			t.Errorf("unique[%d] = %s, want %s", i, unique[i].Name, n)
		}
	}
	wantMult := []int{1, 3, 2}
	for i, m := range wantMult {
		if mult[i] != m {
			t.Errorf("mult[%d] = %d, want %d", i, mult[i], m)
		}
	}
	wantIndex := []int{0, 1, 1, 2, 1, 2}
	for i, u := range wantIndex {
		if index[i] != u {
			t.Errorf("index[%d] = %d, want %d", i, index[i], u)
		}
	}
	// Multiplicities must cover every input layer.
	total := 0
	for _, m := range mult {
		total += m
	}
	if total != len(layers) {
		t.Fatalf("multiplicities sum to %d, want %d", total, len(layers))
	}
}

// TestShapeKeyDistinguishes: every shape-relevant field changes the key; the
// name does not, and zero-value strides/precision key like their defaults.
func TestShapeKeyDistinguishes(t *testing.T) {
	base := NewConv2D("a", 1, 64, 32, 28, 28, 3, 3)
	seen := map[string]string{base.ShapeKey(): "base"}
	distinct := func(tag string, l Layer) {
		t.Helper()
		if prev, dup := seen[l.ShapeKey()]; dup {
			t.Errorf("%s collides with %s", tag, prev)
		}
		seen[l.ShapeKey()] = tag
	}
	distinct("k", NewConv2D("a", 1, 65, 32, 28, 28, 3, 3))
	distinct("fx", NewConv2D("a", 1, 64, 32, 28, 28, 3, 1))
	distinct("matmul", NewMatMul("a", 64, 32, 28))

	strided := base
	strided.Strides = loops.Strides{SX: 2, SY: 2, DX: 1, DY: 1}
	distinct("strides", strided)

	prec := base
	prec.Precision = Precision{W: 4, I: 4, O: 16}
	distinct("precision", prec)

	renamed := base
	renamed.Name = "b"
	if renamed.ShapeKey() != base.ShapeKey() {
		t.Error("name changed the shape key")
	}

	// The constructor fills defaults; a layer with explicitly zeroed strides
	// and precision describes the same shape and must key identically.
	zeroed := base
	zeroed.Strides = loops.Strides{}
	zeroed.Precision = Precision{}
	def := base
	def.Strides = loops.Strides{SX: 1, SY: 1, DX: 1, DY: 1}
	def.Precision = DefaultPrecision
	if zeroed.ShapeKey() != def.ShapeKey() {
		t.Error("zero-value strides/precision key differently from the defaults")
	}
}

// TestShapeKeyHeadsCollision: two attention ops that differ ONLY in the head
// multiplicity do different total work and must not coalesce, while the zero
// value and an explicit Heads=1 describe the same operator and must. The
// same rule holds per kind: AttnScore and AttnCtx with numerically equal
// dims are distinct shapes.
func TestShapeKeyHeadsCollision(t *testing.T) {
	h8 := NewAttnScore("s", 32, 48, 64, 8)
	h12 := NewAttnScore("s", 32, 48, 64, 12)
	if h8.ShapeKey() == h12.ShapeKey() {
		t.Error("AttnScore Heads=8 and Heads=12 share a shape key")
	}
	unique, _, _ := DedupLayers([]Layer{h8, h12})
	if len(unique) != 2 {
		t.Fatalf("DedupLayers coalesced layers differing only in Heads: %d unique", len(unique))
	}

	h0 := NewAttnScore("a", 32, 48, 64, 0)
	h1 := NewAttnScore("b", 32, 48, 64, 1)
	if h0.ShapeKey() != h1.ShapeKey() {
		t.Error("Heads=0 and Heads=1 key differently")
	}
	unique, mult, _ := DedupLayers([]Layer{h0, h1})
	if len(unique) != 1 || mult[0] != 2 {
		t.Errorf("Heads=0/Heads=1 did not coalesce: unique=%d", len(unique))
	}

	// Same dim vector, different kind: Q·K^T vs scores·V must stay apart.
	score := NewAttnScore("s", 16, 64, 64, 4)
	ctx := NewAttnCtx("c", 16, 64, 64, 4)
	if score.ShapeKey() == ctx.ShapeKey() {
		t.Error("AttnScore and AttnCtx with equal dims share a shape key")
	}

	// Elementwise kinds with equal row/col dims are distinct per kind.
	ln := NewElemwise(LayerNorm, "ln", 16, 64, 1)
	sm := NewElemwise(Softmax, "sm", 16, 64, 1)
	if ln.ShapeKey() == sm.ShapeKey() {
		t.Error("LayerNorm and Softmax with equal dims share a shape key")
	}
	smh := NewElemwise(Softmax, "smh", 16, 64, 4)
	if sm.ShapeKey() == smh.ShapeKey() {
		t.Error("Softmax Heads=1 and Heads=4 share a shape key")
	}
}
