package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/loops"
)

func TestKindString(t *testing.T) {
	if Conv2D.String() != "Conv2D" || MatMul.String() != "MatMul" {
		t.Error("Kind names wrong")
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestPrecision(t *testing.T) {
	p := DefaultPrecision
	if p.Bits(loops.W) != 8 || p.Bits(loops.I) != 8 || p.Bits(loops.O) != 24 {
		t.Error("default precision wrong")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if err := (Precision{W: 8, I: 0, O: 24}).Validate(); err == nil {
		t.Error("zero precision validated")
	}
}

func TestNewConv2DDefaults(t *testing.T) {
	l := NewConv2D("c", 0, 16, 8, 4, 4, 3, 3)
	if l.Dim(loops.B) != 1 {
		t.Error("zero B not defaulted to 1")
	}
	if l.Precision != DefaultPrecision {
		t.Error("precision not defaulted")
	}
	if l.Strides.SX != 1 || l.Strides.DY != 1 {
		t.Error("strides not normalized")
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLayerValidateKinds(t *testing.T) {
	good := []Layer{
		NewConv2D("c", 1, 4, 4, 4, 4, 3, 3),
		NewDense("d", 2, 16, 16),
		NewMatMul("m", 8, 8, 8),
		NewPointwise("p", 1, 8, 8, 4, 4),
		NewDepthwise("dw", 1, 8, 4, 4, 3, 3),
	}
	for _, l := range good {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}

	bad := NewDense("d", 1, 4, 4)
	bad.Dims[loops.OX] = 2
	if err := bad.Validate(); err == nil {
		t.Error("dense with OX=2 validated")
	}

	pw := NewPointwise("p", 1, 4, 4, 2, 2)
	pw.Dims[loops.FX] = 3
	if err := pw.Validate(); err == nil {
		t.Error("pointwise with FX=3 validated")
	}

	dw := NewDepthwise("dw", 1, 8, 4, 4, 3, 3)
	dw.Dims[loops.K] = 8 // both K and C > 1
	if err := dw.Validate(); err == nil {
		t.Error("depthwise with K>1 and C>1 validated")
	}

	neg := NewMatMul("m", 4, 4, 4)
	neg.Dims[loops.C] = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative dim validated")
	}

	unk := Layer{Name: "u", Kind: Kind(77)}
	unk.setDefaults()
	if err := unk.Validate(); err == nil {
		t.Error("unknown kind validated")
	}
}

func TestTotalMACs(t *testing.T) {
	l := NewConv2D("c", 2, 4, 8, 5, 5, 3, 3)
	want := int64(2 * 4 * 8 * 5 * 5 * 3 * 3)
	if got := l.TotalMACs(); got != want {
		t.Errorf("TotalMACs = %d, want %d", got, want)
	}
}

func TestOperandElems(t *testing.T) {
	l := NewConv2D("c", 2, 4, 8, 5, 5, 3, 3)
	if got := l.OperandElems(loops.W); got != 4*8*3*3 {
		t.Errorf("W elems = %d", got)
	}
	if got := l.OperandElems(loops.O); got != 2*4*5*5 {
		t.Errorf("O elems = %d", got)
	}
	// I: B*C*(5+3-1)^2 = 2*8*49.
	if got := l.OperandElems(loops.I); got != 2*8*49 {
		t.Errorf("I elems = %d", got)
	}
}

func TestOperandBitsAndTotal(t *testing.T) {
	l := NewMatMul("m", 2, 3, 4)
	// W = K*C = 12 elems * 8b; I = B*C = 8 * 8b; O = B*K = 6 * 24b.
	if got := l.OperandBits(loops.W); got != 96 {
		t.Errorf("W bits = %d", got)
	}
	if got := l.OperandBits(loops.I); got != 64 {
		t.Errorf("I bits = %d", got)
	}
	if got := l.OperandBits(loops.O); got != 144 {
		t.Errorf("O bits = %d", got)
	}
	if got := l.TotalDataBits(); got != 96+64+144 {
		t.Errorf("total bits = %d", got)
	}
}

func TestIm2Col(t *testing.T) {
	l := NewConv2D("c", 2, 16, 8, 7, 7, 3, 3)
	m := Im2Col(l)
	if m.Kind != MatMul {
		t.Fatal("Im2Col did not produce MatMul")
	}
	if m.Dim(loops.B) != 2*7*7 || m.Dim(loops.K) != 16 || m.Dim(loops.C) != 8*3*3 {
		t.Errorf("Im2Col dims = %v", m.Dims)
	}
	for _, d := range []loops.Dim{loops.OY, loops.OX, loops.FY, loops.FX} {
		if m.Dim(d) != 1 {
			t.Errorf("Im2Col left %s = %d", d, m.Dim(d))
		}
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

// Property: Im2Col preserves the total MAC count and W/O sizes.
func TestIm2ColPreservesMACs(t *testing.T) {
	f := func(b, k, c, o, fv uint8) bool {
		l := NewConv2D("c",
			int64(b%4+1), int64(k%8+1), int64(c%8+1),
			int64(o%6+1), int64(o%6+1), int64(fv%3+1), int64(fv%3+1))
		m := Im2Col(l)
		return m.TotalMACs() == l.TotalMACs() &&
			m.OperandElems(loops.O) == l.OperandElems(loops.O)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Im2Col duplicates input pixels: lowered I size must be >= original.
func TestIm2ColInputDuplication(t *testing.T) {
	l := NewConv2D("c", 1, 4, 4, 8, 8, 3, 3)
	m := Im2Col(l)
	if m.OperandElems(loops.I) < l.OperandElems(loops.I) {
		t.Error("Im2Col shrank input size")
	}
	// 1x1 filters duplicate nothing.
	pw := NewPointwise("p", 1, 4, 4, 8, 8)
	mpw := Im2Col(pw)
	if mpw.OperandElems(loops.I) != pw.OperandElems(loops.I) {
		t.Error("1x1 Im2Col changed input size")
	}
}

func TestLayerString(t *testing.T) {
	l := NewMatMul("m", 2, 3, 4)
	want := "m MatMul[B2 K3 C4 OY1 OX1 FY1 FX1]"
	if got := l.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestHandTrackingSuite(t *testing.T) {
	suite := HandTrackingSuite()
	if len(suite) < 10 {
		t.Fatalf("suite has %d layers, want >= 10", len(suite))
	}
	names := map[string]bool{}
	for _, l := range suite {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if names[l.Name] {
			t.Errorf("duplicate layer name %q", l.Name)
		}
		names[l.Name] = true
		m := Im2Col(l)
		if err := m.Validate(); err != nil {
			t.Errorf("%s lowered: %v", l.Name, err)
		}
	}
}

func TestCase2Sweep(t *testing.T) {
	sweep := Case2Sweep()
	if len(sweep) < 10 {
		t.Fatalf("sweep has %d points", len(sweep))
	}
	has128 := false
	has512 := false
	for _, l := range sweep {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if l.Name == "(128,128,8)" {
			has128 = true
		}
		if l.Name == "(512,512,8)" {
			has512 = true
		}
	}
	if !has128 || !has512 {
		t.Error("sweep misses the paper's canonical (128,128,8)/(512,512,8) points")
	}
}

func TestCase1Layer(t *testing.T) {
	l := Case1Layer()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// CC_ideal on the 256-MAC case-study array must be 38400 (paper Fig. 6).
	if got := l.TotalMACs() / 256; got != 38400 {
		t.Errorf("case1 CC_ideal = %d, want 38400", got)
	}
	// The spatial unrolling K16|B8|C2 must divide the layer dims.
	if l.Dim(loops.K)%16 != 0 || l.Dim(loops.B)%8 != 0 || l.Dim(loops.C)%2 != 0 {
		t.Error("case1 layer not divisible by the case-study spatial unrolling")
	}
}
