package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/loops"
)

func TestKindPredicates(t *testing.T) {
	for _, k := range []Kind{Conv2D, Dense, Depthwise, Pointwise, MatMul, AttnScore, AttnCtx} {
		if !k.MatmulShaped() {
			t.Errorf("%s not matmul-shaped", k)
		}
		if k.Elementwise() {
			t.Errorf("%s reported elementwise", k)
		}
	}
	for _, k := range []Kind{LayerNorm, Softmax, GeLU, ResidualAdd} {
		if k.MatmulShaped() {
			t.Errorf("%s reported matmul-shaped", k)
		}
		if !k.Elementwise() {
			t.Errorf("%s not elementwise", k)
		}
		r, w := k.ElemwisePasses()
		if r < 1 || w < 1 {
			t.Errorf("%s passes = %d/%d", k, r, w)
		}
	}
	if r, w := MatMul.ElemwisePasses(); r != 0 || w != 0 {
		t.Errorf("MatMul passes = %d/%d, want 0/0", r, w)
	}
}

func TestAttnLayerValidate(t *testing.T) {
	score := NewAttnScore("s", 32, 48, 64, 8)
	if err := score.Validate(); err != nil {
		t.Error(err)
	}
	if score.Dim(loops.B) != 32 || score.Dim(loops.K) != 48 || score.Dim(loops.C) != 64 {
		t.Errorf("AttnScore dims = %v", score.Dims)
	}
	ctx := NewAttnCtx("c", 32, 64, 48, 8)
	if err := ctx.Validate(); err != nil {
		t.Error(err)
	}
	if ctx.Dim(loops.B) != 32 || ctx.Dim(loops.K) != 64 || ctx.Dim(loops.C) != 48 {
		t.Errorf("AttnCtx dims = %v", ctx.Dims)
	}

	bad := score
	bad.Dims[loops.OY] = 2
	if err := bad.Validate(); err == nil {
		t.Error("AttnScore with OY=2 validated")
	}

	neg := score
	neg.Heads = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative Heads validated")
	}

	// Head batching is reserved for the transformer kinds.
	conv := NewConv2D("c", 1, 4, 4, 4, 4, 3, 3)
	conv.Heads = 2
	if err := conv.Validate(); err == nil {
		t.Error("Conv2D with Heads=2 validated")
	}
	mm := NewMatMul("m", 4, 4, 4)
	mm.Heads = 2
	if err := mm.Validate(); err == nil {
		t.Error("MatMul with Heads=2 validated")
	}
}

func TestElemwiseLayerValidate(t *testing.T) {
	for _, k := range []Kind{LayerNorm, Softmax, GeLU, ResidualAdd} {
		l := NewElemwise(k, "e", 16, 64, 1)
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
	bad := NewElemwise(GeLU, "g", 16, 64, 1)
	bad.Dims[loops.K] = 2
	if err := bad.Validate(); err == nil {
		t.Error("elementwise layer with K=2 validated")
	}
}

// Head batching is a pure multiplicity: whole-operator MACs and operand
// sizes of an H-head attention matmul equal H independent per-head matmuls.
func TestHeadBatchSumsToUnbatched(t *testing.T) {
	f := func(rows, keyLen, dHead, heads uint8) bool {
		r, kl, dh := int64(rows%16+1), int64(keyLen%16+1), int64(dHead%16+1)
		h := int64(heads%8 + 1)
		batched := NewAttnScore("b", r, kl, dh, h)
		single := NewAttnScore("s", r, kl, dh, 1)
		if batched.WorkMACs() != h*single.WorkMACs() {
			return false
		}
		for _, op := range loops.AllOperands {
			if batched.OperandBits(op) != h*single.OperandBits(op) {
				return false
			}
		}
		// The per-head problem the mapper prices is head-count independent.
		return batched.TotalMACs() == single.TotalMACs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttnOperandSizes(t *testing.T) {
	// AttnScore per head: W = K*C = keyLen*dHead (the K-cache in decode),
	// I = B*C = rows*dHead (Q), O = B*K = rows*keyLen (scores).
	s := NewAttnScore("s", 4, 6, 8, 2)
	if got := s.OperandElems(loops.W); got != 2*6*8 {
		t.Errorf("AttnScore W elems = %d, want %d", got, 2*6*8)
	}
	if got := s.OperandElems(loops.I); got != 2*4*8 {
		t.Errorf("AttnScore I elems = %d, want %d", got, 2*4*8)
	}
	if got := s.OperandElems(loops.O); got != 2*4*6 {
		t.Errorf("AttnScore O elems = %d, want %d", got, 2*4*6)
	}
	// AttnCtx per head: W = K*C = dHead*keyLen (the V-cache), I = B*C =
	// rows*keyLen (scores), O = B*K = rows*dHead (context).
	c := NewAttnCtx("c", 4, 8, 6, 2)
	if got := c.OperandElems(loops.W); got != 2*8*6 {
		t.Errorf("AttnCtx W elems = %d, want %d", got, 2*8*6)
	}
	if got := c.OperandElems(loops.I); got != 2*4*6 {
		t.Errorf("AttnCtx I elems = %d, want %d", got, 2*4*6)
	}
	if got := c.OperandElems(loops.O); got != 2*4*8 {
		t.Errorf("AttnCtx O elems = %d, want %d", got, 2*4*8)
	}
}

func TestElemwiseOperandSizes(t *testing.T) {
	ln := NewElemwise(LayerNorm, "ln", 16, 64, 1)
	if got := ln.OperandElems(loops.I); got != 16*64 {
		t.Errorf("LayerNorm I elems = %d", got)
	}
	if got := ln.OperandElems(loops.O); got != 16*64 {
		t.Errorf("LayerNorm O elems = %d", got)
	}
	if got := ln.OperandElems(loops.W); got != 2*64 {
		t.Errorf("LayerNorm params = %d, want %d (γ+β)", got, 2*64)
	}
	if ln.WorkMACs() != 0 {
		t.Error("elementwise layer reports MACs")
	}

	sm := NewElemwise(Softmax, "sm", 16, 48, 4)
	if got := sm.OperandElems(loops.I); got != 4*16*48 {
		t.Errorf("head-batched Softmax I elems = %d", got)
	}
	if got := sm.OperandElems(loops.W); got != 0 {
		t.Errorf("Softmax params = %d, want 0", got)
	}
}

func TestIm2ColPassesThroughNewKinds(t *testing.T) {
	layers := []Layer{
		NewAttnScore("s", 8, 8, 8, 4),
		NewAttnCtx("c", 8, 8, 8, 4),
		NewElemwise(LayerNorm, "ln", 8, 8, 1),
		NewElemwise(Softmax, "sm", 8, 8, 4),
		NewElemwise(GeLU, "g", 8, 8, 1),
		NewElemwise(ResidualAdd, "r", 8, 8, 1),
	}
	for _, l := range layers {
		m := Im2Col(l)
		if m.Kind != l.Kind {
			t.Errorf("%s: Im2Col changed kind %s -> %s", l.Name, l.Kind, m.Kind)
		}
		if m.Dims != l.Dims || m.Heads != l.Heads {
			t.Errorf("%s: Im2Col changed shape", l.Name)
		}
	}
}

func TestHeadBatchedString(t *testing.T) {
	l := NewAttnScore("s", 2, 3, 4, 8)
	want := "s AttnScore[B2 K3 C4 OY1 OX1 FY1 FX1]x8"
	if got := l.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
