package workload

import (
	"testing"

	"repro/internal/loops"
)

func TestResNet18Suite(t *testing.T) {
	suite := ResNet18Suite()
	if len(suite) != 1+4+5+5+5+1 {
		t.Fatalf("resnet18 layers = %d", len(suite))
	}
	names := map[string]bool{}
	var macs int64
	for _, l := range suite {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if names[l.Name] {
			t.Errorf("duplicate name %s", l.Name)
		}
		names[l.Name] = true
		macs += l.TotalMACs()
		m := Im2Col(l)
		if err := m.Validate(); err != nil {
			t.Errorf("%s lowered: %v", l.Name, err)
		}
	}
	// ResNet-18 backbone is ~1.8 GMAC; our unrolled variant must land in
	// the same ballpark.
	if macs < 1_200_000_000 || macs > 2_500_000_000 {
		t.Errorf("resnet18 MACs = %d, expected ~1.8G", macs)
	}
	// Strided stem: the input extent must reflect stride 2.
	stem := suite[0]
	if stem.Strides.SX != 2 {
		t.Error("stem not strided")
	}
	if got := stem.OperandElems(loops.I); got != 3*((112-1)*2+7)*((112-1)*2+7) {
		t.Errorf("stem input elems = %d", got)
	}
}

func TestVGG16Suite(t *testing.T) {
	suite := VGG16Suite()
	if len(suite) != 16 {
		t.Fatalf("vgg16 layers = %d", len(suite))
	}
	var macs int64
	for _, l := range suite {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		macs += l.TotalMACs()
	}
	// VGG-16 is ~15.5 GMAC.
	if macs < 12_000_000_000 || macs > 18_000_000_000 {
		t.Errorf("vgg16 MACs = %d, expected ~15.5G", macs)
	}
	// VGG is weight-heavy: fc6 alone holds >100M weights.
	fc6 := suite[13]
	if fc6.OperandElems(loops.W) < 100_000_000 {
		t.Errorf("fc6 weights = %d", fc6.OperandElems(loops.W))
	}
}

func TestMobileNetV2Suite(t *testing.T) {
	suite := MobileNetV2Suite()
	if len(suite) < 40 {
		t.Fatalf("mobilenetv2 layers = %d", len(suite))
	}
	var macs int64
	names := map[string]bool{}
	for _, l := range suite {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
		if names[l.Name] {
			t.Errorf("duplicate %s", l.Name)
		}
		names[l.Name] = true
		macs += l.TotalMACs()
	}
	// MobileNetV2 is ~0.3 GMAC.
	if macs < 200_000_000 || macs > 500_000_000 {
		t.Errorf("mobilenetv2 MACs = %d, expected ~0.3G", macs)
	}
	// Depthwise layers present and per-channel shaped.
	dw := 0
	for _, l := range suite {
		if l.Kind == Depthwise {
			dw++
			if l.Dim(loops.K) != 1 {
				t.Errorf("%s depthwise with K=%d", l.Name, l.Dim(loops.K))
			}
		}
	}
	if dw < 10 {
		t.Errorf("only %d depthwise layers", dw)
	}
}
