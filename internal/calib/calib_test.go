package calib

import (
	"context"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// problems builds a diverse sample set (different shapes -> independent
// feature vectors).
func problems(t *testing.T) []*core.Problem {
	t.Helper()
	hw := arch.CaseStudy()
	shapes := [][3]int64{
		{16, 32, 32}, {64, 16, 64}, {32, 64, 16}, {64, 64, 64},
		{128, 32, 16}, {16, 128, 32}, {32, 16, 128},
	}
	// Precisions must vary or the MAC and array features are collinear.
	precs := []workload.Precision{
		{W: 8, I: 8, O: 24}, {W: 4, I: 4, O: 16}, {W: 16, I: 8, O: 32},
		{W: 8, I: 4, O: 24}, {W: 8, I: 8, O: 8}, {W: 4, I: 8, O: 16},
		{W: 16, I: 16, O: 32},
	}
	var out []*core.Problem
	for i, s := range shapes {
		l := workload.NewMatMul("c", s[0], s[1], s[2])
		l.Precision = precs[i%len(precs)]
		best, _, err := mapper.Best(context.Background(), &l, hw, &mapper.Options{
			Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		layer := l
		out = append(out, &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping})
	}
	return out
}

// TestFitRecoversGroundTruth generates energies from a known table and
// checks the fit recovers its coefficients.
func TestFitRecoversGroundTruth(t *testing.T) {
	truth := &energy.Table{
		MACpJ:         0.2,
		RegPJPerBit:   0.004,
		BasePJPerBit:  0.02,
		SlopePJPerBit: 0.03,
		WritePenalty:  1.1,
	}
	var samples []Sample
	for _, p := range problems(t) {
		b, err := energy.Evaluate(p, truth)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{Problem: p, EnergyPJ: b.TotalPJ})
	}
	fit, err := Fit(samples, truth.WritePenalty)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want))*1e3 { // 0.1% tolerance
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("MACpJ", fit.MACpJ, truth.MACpJ)
	check("RegPJPerBit", fit.RegPJPerBit, truth.RegPJPerBit)
	check("BasePJPerBit", fit.BasePJPerBit, truth.BasePJPerBit)
	check("SlopePJPerBit", fit.SlopePJPerBit, truth.SlopePJPerBit)

	res, err := Residuals(samples, fit)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if math.Abs(r) > 1e-6 {
			t.Errorf("sample %d residual %v", i, r)
		}
	}
}

// TestFitNoisyMeasurements: with +-5% multiplicative noise the fit still
// lands within ~10% of the truth on the dominant coefficients.
func TestFitNoisyMeasurements(t *testing.T) {
	truth := energy.Default7nm()
	noise := []float64{1.04, 0.97, 1.02, 0.95, 1.05, 0.98, 1.01}
	var samples []Sample
	for i, p := range problems(t) {
		b, err := energy.Evaluate(p, truth)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{Problem: p, EnergyPJ: b.TotalPJ * noise[i%len(noise)]})
	}
	fit, err := Fit(samples, truth.WritePenalty)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Residuals(samples, fit)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, r := range res {
		if math.Abs(r) > worst {
			worst = math.Abs(r)
		}
	}
	if worst > 0.10 {
		t.Errorf("worst residual %.3f > 10%%", worst)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 1.1); err == nil {
		t.Error("fit with no samples accepted")
	}
	// Degenerate: identical samples -> singular normal equations.
	hw := arch.CaseStudy()
	l := workload.NewMatMul("d", 32, 32, 32)
	best, _, err := mapper.Best(context.Background(), &l, hw, &mapper.Options{
		Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{Layer: &l, Arch: hw, Mapping: best.Mapping}
	same := []Sample{{p, 1}, {p, 1}, {p, 1}, {p, 1}}
	if _, err := Fit(same, 1.1); err == nil {
		t.Error("singular system not detected")
	}
}

func TestFeaturesShape(t *testing.T) {
	p := problems(t)[0]
	f, err := Features(p, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f {
		if v <= 0 {
			t.Errorf("feature %d = %v", i, v)
		}
	}
	if f[0] != float64(p.Layer.TotalMACs()) {
		t.Error("MAC feature wrong")
	}
	if f[3] <= f[2] {
		t.Error("capacity-scaled feature should exceed raw bits (sqrt factor > 1 for KiB-scale memories)")
	}
}
