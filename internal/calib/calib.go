// Package calib fits the energy model's unit-cost coefficients to
// reference measurements — the step a real deployment performs once
// post-silicon data (or a trusted simulator like Accelergy) is available.
// The energy model is linear in its four coefficients
//
//	E = MACs·a + arrayBits·b + Σ_mem bits(mem)·(c + d·sqrt(cap(mem)/8KiB))
//
// (write accesses carry the fixed write penalty), so the fit is ordinary
// least squares, solved from scratch via the normal equations and Gaussian
// elimination with partial pivoting — no external numerics.
package calib

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/loops"
)

// Sample pairs a problem with a measured total energy.
type Sample struct {
	Problem  *core.Problem
	EnergyPJ float64
}

// Features extracts the four linear features of the energy model for one
// problem: (MAC count, array-side bits, total memory bits, capacity-scaled
// memory bits), with the write penalty folded in.
func Features(p *core.Problem, writePenalty float64) ([4]float64, error) {
	var f [4]float64
	eps, err := core.Endpoints(p)
	if err != nil {
		return f, err
	}
	macs := float64(p.Layer.TotalMACs())
	prec := p.Layer.Precision
	f[0] = macs
	f[1] = macs * (float64(prec.Bits(loops.W)) + float64(prec.Bits(loops.I)) +
		float64(prec.Bits(loops.O))*(1+writePenalty))
	for _, e := range eps {
		mem := p.Arch.MemoryByName(e.MemName)
		bits := float64(e.Z) * float64(e.MemData) * float64(prec.Bits(e.Operand))
		if e.Access.Write {
			bits *= writePenalty
		}
		f[2] += bits
		f[3] += bits * math.Sqrt(float64(mem.CapacityBits)/(8*1024*8))
	}
	return f, nil
}

// Fit solves for (MACpJ, RegPJPerBit, BasePJPerBit, SlopePJPerBit) by least
// squares over the samples. The write penalty is taken as given (it is not
// linearly identifiable jointly with the per-bit costs). Note that the MAC
// and array-register features are proportional when every sample uses the
// same operand precisions, so a well-posed calibration set must vary the
// precisions (e.g. INT4/INT8/INT16 reference runs).
func Fit(samples []Sample, writePenalty float64) (*energy.Table, error) {
	if len(samples) < 4 {
		return nil, fmt.Errorf("calib: need >= 4 samples, got %d", len(samples))
	}
	// Normal equations: (XᵀX) w = Xᵀy.
	var ata [4][4]float64
	var aty [4]float64
	for _, s := range samples {
		f, err := Features(s.Problem, writePenalty)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 4; i++ {
			aty[i] += f[i] * s.EnergyPJ
			for j := 0; j < 4; j++ {
				ata[i][j] += f[i] * f[j]
			}
		}
	}
	w, err := solve4(ata, aty)
	if err != nil {
		return nil, err
	}
	return &energy.Table{
		MACpJ:         w[0],
		RegPJPerBit:   w[1],
		BasePJPerBit:  w[2],
		SlopePJPerBit: w[3],
		WritePenalty:  writePenalty,
	}, nil
}

// solve4 solves a 4x4 linear system by Gaussian elimination with partial
// pivoting; singularity is judged relative to the matrix magnitude.
func solve4(a [4][4]float64, b [4]float64) ([4]float64, error) {
	const n = 4
	norm := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := math.Abs(a[i][j]); v > norm {
				norm = v
			}
		}
	}
	if norm == 0 {
		return b, fmt.Errorf("calib: zero system")
	}
	tol := 1e-10 * norm
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < tol {
			return b, fmt.Errorf("calib: singular system (features not independent — vary layer shapes AND operand precisions)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			m := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= m * a[col][c]
			}
			b[r] -= m * b[col]
		}
	}
	var x [4]float64
	for r := n - 1; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < n; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, nil
}

// Residuals returns the per-sample relative errors of a fitted table.
func Residuals(samples []Sample, tbl *energy.Table) ([]float64, error) {
	out := make([]float64, len(samples))
	for i, s := range samples {
		b, err := energy.Evaluate(s.Problem, tbl)
		if err != nil {
			return nil, err
		}
		out[i] = (b.TotalPJ - s.EnergyPJ) / s.EnergyPJ
	}
	return out, nil
}
