package surrogate

// Default returns the embedded default model. Its weights were fit offline
// by ridge least squares (Fit) on the exact scores of the case-study,
// in-house and TPU-like preset mapping spaces (775 samples, training RMSE
// 0.46 in the log domain, Spearman 0.91) — see TestFitDefaultModelWeights
// in internal/mapper, which reproduces the fit, asserts its health, and
// prints the literal below when run with SURROGATE_REFIT=1.
func Default() *Model {
	m := defaultModel
	return &m
}

// Fit over 775 samples: RMSE 0.4646, Spearman 0.9128.
var defaultModel = Model{
	W: [NumFeatures]float64{
		0.6958713703459539,    // CC_spatial
		-0.07168478833208532,  // preload proxy
		-0.025140350295165422, // offload proxy
		0.1832932549078379,    // W L0 Mem_DATA
		0.09620602839797222,   // W L0 excess demand
		0.12272739247187417,   // W L1 Mem_DATA
		-0.1578646587830539,   // W L1 excess demand
		0,                     // W L2 Mem_DATA
		0,                     // W L2 excess demand
		0.20368257678063895,   // I L0 Mem_DATA
		0.03884262246417342,   // I L0 excess demand
		-0.010186905592391148, // I L1 Mem_DATA
		0,                     // I L1 excess demand
		0,                     // I L2 Mem_DATA
		0,                     // I L2 excess demand
		-0.017911493432912366, // O L0 Mem_DATA
		0.1676102988606994,    // O L0 excess demand
		0.18498055179348086,   // O L1 Mem_DATA
		-0.42187313426320683,  // O L1 excess demand
		0,                     // O L2 Mem_DATA
		0,                     // O L2 excess demand
	},
	B: 0.5989605844467158,
}
