// Package surrogate is a cheap learned latency predictor used to ORDER the
// mapper's candidate stream, never to score it. The exact model of package
// core costs tens of microseconds per mapping (Step 2's periodic window
// unions dominate); the surrogate predicts a monotone proxy of the same
// latency from a fixed vector of loop-signature statistics — per-operand
// per-level dim products, Table-I top reuse runs and bandwidth-pressure
// ratios against the architecture's port widths — in well under a
// microsecond. The mapper walks its enumeration in the canonical order,
// collects the surviving class representatives, sorts them by the surrogate
// prediction and only then streams them to the exact-scoring workers: the
// branch-and-bound best drops to near-optimal within the first few exact
// evaluations, so the admissible lower bound prunes far more of the stream.
// Because every surviving candidate is still scored by the exact model and
// the original walk sequence number rides along as the tie-break, the
// selected mapping is bit-identical with the surrogate on or off (DESIGN.md
// §12) — a wrong prediction can only cost speed, never correctness.
//
// The predictor is linear in its features, fit by ridge-regularized least
// squares (Fit) on (features, log exact latency) pairs — harvested from
// memoized search results (mapper.HarvestSamples) or any other source — and
// ships with an embedded default model fit offline from the in-house case
// -study preset (default.go).
package surrogate

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// maxLevels caps the per-operand interface levels the feature vector
// resolves; deeper chains fold their remainder into the last slot's terms
// staying zero (the fit then simply cannot distinguish them — acceptable for
// an ordering heuristic).
const maxLevels = 3

// NumFeatures is the fixed feature-vector width.
//
// Layout (all in log1p domain for scale stability):
//
//	[0]                 CC_spatial — the temporal loop product
//	[1]                 preload proxy — Σ W/I level tiles over min port width
//	[2]                 offload proxy — Σ O level tiles over min port width
//	[3 + op*2*L + l*2]  Mem_DATA of operand op at level l
//	[4 + op*2*L + l*2]  stall proxy of (op, l): max(0, X_REAL−X_REQ)·Z, the
//	                    link's raw excess bandwidth demand under Table I
const NumFeatures = 3 + int(loops.NumOperands)*2*maxLevels

// Vec is one feature vector.
type Vec [NumFeatures]float64

// Features fills dst with the feature vector of one mapped problem. The
// mapping must have its per-operand level boundaries assigned (the mapper's
// canonicalizer guarantees that for every candidate it emits). The
// computation reads the same statistics the class signature is built from —
// per-operand per-level dim products and top reuse runs — plus the
// architecture's port widths, and allocates nothing.
func Features(dst *Vec, l *workload.Layer, a *arch.Arch, m *mapping.Mapping) {
	for i := range dst {
		dst[i] = 0
	}
	dst[0] = math.Log1p(float64(m.CCSpatial()))

	var pre, post float64
	for _, op := range loops.AllOperands {
		chain := a.ChainMems(op)
		bits := int64(l.Precision.Bits(op))
		levels := len(chain) - 1
		for lev := 0; lev < levels; lev++ {
			memData := m.MemData(op, lev, l.Strides)
			memCC := m.MemCC(op, lev)
			z := m.Periods(op, lev)
			topRun := int64(1)
			if !chain[lev].DoubleBuffered {
				topRun = m.TopReuseRun(op, lev)
			}
			if topRun <= 0 || memCC%topRun != 0 {
				// Inconsistent Table-I scaling: the exact model rejects this
				// nest; predict from the remaining terms.
				continue
			}
			xReq := memCC / topRun

			// The slower of the two port endpoints bounds the transfer.
			bw := portBW(chain[lev+1], op, false)
			if w := portBW(chain[lev], op, true); w > 0 && (bw <= 0 || w < bw) {
				bw = w
			}
			var xReal, hop float64
			if bw > 0 {
				hop = float64(memData*bits) / float64(bw)
				xReal = hop
			}
			if op == loops.O {
				post += hop
			} else {
				pre += hop
			}

			if lev < maxLevels {
				base := 3 + (int(op)*maxLevels+lev)*2
				dst[base] = math.Log1p(float64(memData))
				if excess := (xReal - float64(xReq)) * float64(z); excess > 0 {
					dst[base+1] = math.Log1p(excess)
				}
			}
		}
	}
	dst[1] = math.Log1p(pre)
	dst[2] = math.Log1p(post)
}

// portBW returns the bandwidth of mem's port serving (op, write), or 0 when
// the memory has no such port.
func portBW(mem *arch.Memory, op loops.Operand, write bool) int64 {
	p, _, err := mem.Port(arch.Access{Operand: op, Write: write})
	if err != nil {
		return 0
	}
	return p.BWBits
}

// Model is the linear predictor: Predict = W·features + B. The prediction
// approximates log(CC_total) and is meaningful only as an ORDERING key —
// never as a latency estimate.
type Model struct {
	W [NumFeatures]float64
	B float64
}

// Predict returns the model's latency proxy for a feature vector. Lower
// predictions are walked first by the guided mapper.
func (m *Model) Predict(f *Vec) float64 {
	s := m.B
	for i, w := range m.W {
		s += w * f[i]
	}
	return s
}

// active is the process-wide model consulted by guided searches; nil selects
// the embedded default.
var active atomic.Pointer[Model]

// Active returns the model guided searches use: the last SetActive argument,
// or the embedded default.
func Active() *Model {
	if m := active.Load(); m != nil {
		return m
	}
	return Default()
}

// SetActive installs m as the process-wide model (nil restores the embedded
// default). Because the surrogate only orders work, swapping models NEVER
// changes any search result — only how fast the exact search converges.
func SetActive(m *Model) { active.Store(m) }

// Sample is one training observation: the feature vector of a mapping and
// its exact model score (CC_total).
type Sample struct {
	Features Vec
	CCTotal  float64
}

// FitInfo reports the quality of a fit.
type FitInfo struct {
	Samples int
	// RMSE is the root-mean-square residual in the log domain.
	RMSE float64
	// SpearmanTrain is the rank correlation between predictions and targets
	// over the training set — the number that matters for an ordering model.
	SpearmanTrain float64
}

// Fit learns a model from samples by ridge-regularized least squares on
// log(CC_total). The ridge term (lambda <= 0 selects a small default) keeps
// the normal equations positive definite for ANY sample set — degenerate
// single-mapping spaces and collinear features included — so the returned
// weights and residuals are always finite.
func Fit(samples []Sample, lambda float64) (*Model, FitInfo, error) {
	if len(samples) == 0 {
		return nil, FitInfo{}, fmt.Errorf("surrogate: no samples to fit")
	}
	if lambda <= 0 {
		lambda = 1e-3
	}
	const n = NumFeatures + 1 // + bias column

	// Normal equations A·w = b with A = XᵀX + λI (bias unregularized is not
	// worth the asymmetry here; λ is tiny).
	var A [n][n]float64
	var b [n]float64
	for i := range samples {
		s := &samples[i]
		y := math.Log(s.CCTotal)
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, FitInfo{}, fmt.Errorf("surrogate: non-finite target %v", s.CCTotal)
		}
		var x [n]float64
		copy(x[:NumFeatures], s.Features[:])
		x[NumFeatures] = 1
		for r := 0; r < n; r++ {
			if x[r] == 0 {
				continue
			}
			for c := 0; c < n; c++ {
				A[r][c] += x[r] * x[c]
			}
			b[r] += x[r] * y
		}
	}
	for d := 0; d < n; d++ {
		A[d][d] += lambda
	}

	// Gaussian elimination with partial pivoting. A is symmetric positive
	// definite (λ > 0), so the pivots never vanish.
	var w [n]float64
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		if A[col][col] == 0 {
			return nil, FitInfo{}, fmt.Errorf("surrogate: singular normal equations despite ridge")
		}
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := b[col]
		for c := col + 1; c < n; c++ {
			s -= A[col][c] * w[c]
		}
		w[col] = s / A[col][col]
	}

	m := &Model{B: w[NumFeatures]}
	copy(m.W[:], w[:NumFeatures])

	info := FitInfo{Samples: len(samples)}
	var sse float64
	preds := make([]float64, len(samples))
	targets := make([]float64, len(samples))
	for i := range samples {
		p := m.Predict(&samples[i].Features)
		preds[i] = p
		targets[i] = math.Log(samples[i].CCTotal)
		d := p - targets[i]
		sse += d * d
	}
	info.RMSE = math.Sqrt(sse / float64(len(samples)))
	info.SpearmanTrain = Spearman(preds, targets)
	if math.IsNaN(info.RMSE) || math.IsInf(info.RMSE, 0) {
		return nil, info, fmt.Errorf("surrogate: non-finite fit residuals")
	}
	return m, info, nil
}

// Spearman returns the Spearman rank correlation of two equal-length value
// slices (1 = identical order, -1 = reversed). Ties receive fractional
// (midrank) ranks; degenerate inputs (fewer than two points, or a constant
// slice) return 0.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := midranks(a)
	rb := midranks(b)
	// Pearson correlation of the rank vectors.
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var sab, saa, sbb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// midranks assigns average ranks to v, resolving ties to their midrank.
func midranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	// The reducer feeds every fully scored candidate of a guided search in
	// here — thousands of points on the larger preset spaces — so the sort
	// must be O(n log n), not a small-input insertion sort.
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	ranks := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	return ranks
}
