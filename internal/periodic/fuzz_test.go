package periodic

import "testing"

// FuzzUnionLength cross-checks the interval-merge union against the
// brute-force bitmap on arbitrary window shapes.
func FuzzUnionLength(f *testing.F) {
	f.Add(int64(4), int64(2), int64(1), int64(6), int64(3), int64(0))
	f.Add(int64(3), int64(1), int64(2), int64(5), int64(5), int64(0))
	f.Add(int64(8), int64(0), int64(0), int64(2), int64(1), int64(1))
	f.Fuzz(func(t *testing.T, p1, x1, s1, p2, x2, s2 int64) {
		clamp := func(p, x, s int64) (int64, int64, int64) {
			if p < 1 {
				p = 1
			}
			p = p%12 + 1
			if x < 0 {
				x = -x
			}
			x %= p + 1
			if s < 0 {
				s = -s
			}
			if p-x > 0 {
				s %= p - x + 1
			} else {
				s = 0
			}
			return p, x, s
		}
		p1, x1, s1 = clamp(p1, x1, s1)
		p2, x2, s2 = clamp(p2, x2, s2)
		span := p1 * p2 * 2
		a := Window{Period: p1, Active: x1, Start: s1, Count: span / p1}
		b := Window{Period: p2, Active: x2, Start: s2, Count: span / p2}
		if a.Validate() != nil || b.Validate() != nil {
			t.Fatalf("clamped windows invalid: %v %v", a, b)
		}
		got := UnionLength([]Window{a, b})
		want := bruteUnion([]Window{a, b})
		if got != want {
			t.Fatalf("union %d != brute %d for %v %v", got, want, a, b)
		}
	})
}

// FuzzIntersectLength cross-checks intersection the same way.
func FuzzIntersectLength(f *testing.F) {
	f.Add(int64(4), int64(2), int64(6), int64(3))
	f.Fuzz(func(t *testing.T, p1, x1, p2, x2 int64) {
		norm := func(p, x int64) (int64, int64) {
			if p < 1 {
				p = 1
			}
			p = p%10 + 1
			if x < 0 {
				x = -x
			}
			return p, x % (p + 1)
		}
		p1, x1 = norm(p1, x1)
		p2, x2 = norm(p2, x2)
		span := p1 * p2 * 2
		a := Tail(p1, x1, span/p1)
		b := Tail(p2, x2, span/p2)
		got := IntersectLength(a, b)
		var want int64
		for tm := int64(0); tm < span; tm++ {
			if a.ActiveAt(tm) && b.ActiveAt(tm) {
				want++
			}
		}
		if got != want {
			t.Fatalf("intersect %d != brute %d for %v %v", got, want, a, b)
		}
	})
}
