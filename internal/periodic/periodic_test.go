package periodic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	f := Full(8, 3)
	if !f.IsFull() || f.Span() != 24 || f.TotalActive() != 24 {
		t.Errorf("Full wrong: %+v", f)
	}
	k := Tail(8, 2, 3)
	if k.Start != 6 || k.Active != 2 || k.TotalActive() != 6 {
		t.Errorf("Tail wrong: %+v", k)
	}
	// Tail clamps active to period.
	k2 := Tail(4, 9, 1)
	if k2.Active != 4 || k2.Start != 0 {
		t.Errorf("Tail clamp wrong: %+v", k2)
	}
}

func TestValidate(t *testing.T) {
	good := []Window{Full(4, 0), Tail(4, 1, 2), {Period: 5, Active: 0, Start: 0, Count: 1}}
	for _, w := range good {
		if err := w.Validate(); err != nil {
			t.Errorf("%v: %v", w, err)
		}
	}
	bad := []Window{
		{Period: 0, Active: 0, Count: 1},
		{Period: 4, Active: 5, Count: 1},
		{Period: 4, Active: -1, Count: 1},
		{Period: 4, Active: 2, Start: 3, Count: 1},
		{Period: 4, Active: 2, Start: -1, Count: 1},
		{Period: 4, Active: 2, Count: -1},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("%v validated", w)
		}
	}
}

func TestActiveAt(t *testing.T) {
	w := Tail(4, 1, 2) // active at cycles 3 and 7
	wantActive := map[int64]bool{3: true, 7: true}
	for tm := int64(-1); tm < 10; tm++ {
		if got := w.ActiveAt(tm); got != wantActive[tm] {
			t.Errorf("ActiveAt(%d) = %v", tm, got)
		}
	}
}

// bruteUnion computes the union length by bitmap for small spans.
func bruteUnion(ws []Window) int64 {
	span := int64(0)
	for _, w := range ws {
		if w.Span() > span {
			span = w.Span()
		}
	}
	var n int64
	for t := int64(0); t < span; t++ {
		for _, w := range ws {
			if w.ActiveAt(t) {
				n++
				break
			}
		}
	}
	return n
}

func TestUnionLengthBasic(t *testing.T) {
	// Single window.
	if got := UnionLength([]Window{Tail(8, 2, 4)}); got != 8 {
		t.Errorf("single union = %d, want 8", got)
	}
	// Full window dominates.
	ws := []Window{Full(8, 4), Tail(4, 1, 8)}
	if got := UnionLength(ws); got != 32 {
		t.Errorf("full union = %d, want 32", got)
	}
	// Empty set.
	if got := UnionLength(nil); got != 0 {
		t.Errorf("empty union = %d", got)
	}
	// All-zero-active windows.
	if got := UnionLength([]Window{{Period: 4, Active: 0, Count: 4}}); got != 0 {
		t.Errorf("zero-active union = %d", got)
	}
}

func TestUnionLengthDisjointTails(t *testing.T) {
	// Two keep-out windows, same period, non-overlapping actives.
	a := Window{Period: 8, Active: 2, Start: 0, Count: 4}
	b := Window{Period: 8, Active: 2, Start: 4, Count: 4}
	if got := UnionLength([]Window{a, b}); got != 16 {
		t.Errorf("disjoint union = %d, want 16", got)
	}
	// Overlapping actives.
	c := Window{Period: 8, Active: 4, Start: 0, Count: 4}
	d := Window{Period: 8, Active: 4, Start: 2, Count: 4}
	if got := UnionLength([]Window{c, d}); got != 24 {
		t.Errorf("overlap union = %d, want 24", got)
	}
}

func TestUnionLengthDivisiblePeriods(t *testing.T) {
	// Period 4 tail inside period 8 tail: brute-check.
	a := Tail(4, 1, 8) // active {3,7,11,...}
	b := Tail(8, 3, 4) // active {5,6,7, 13,14,15, ...}
	ws := []Window{a, b}
	if got, want := UnionLength(ws), bruteUnion(ws); got != want {
		t.Errorf("union = %d, brute = %d", got, want)
	}
}

func TestUnionLengthCoprimePeriods(t *testing.T) {
	a := Tail(3, 1, 10) // span 30
	b := Tail(5, 2, 6)  // span 30
	ws := []Window{a, b}
	if got, want := UnionLength(ws), bruteUnion(ws); got != want {
		t.Errorf("coprime union = %d, brute = %d", got, want)
	}
}

func TestUnionLengthMixedSpans(t *testing.T) {
	a := Tail(4, 1, 8) // span 32
	b := Tail(4, 2, 4) // span 16 (shorter)
	ws := []Window{a, b}
	if got, want := UnionLength(ws), bruteUnion(ws); got != want {
		t.Errorf("mixed-span union = %d, brute = %d", got, want)
	}
}

func TestUnionAgainstBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(4) + 1
		ws := make([]Window, n)
		span := int64((rng.Intn(6) + 1) * 12) // multiple of many periods
		for i := range ws {
			periods := []int64{2, 3, 4, 6, 12}
			p := periods[rng.Intn(len(periods))]
			x := rng.Int63n(p + 1)
			s := int64(0)
			if p-x > 0 {
				s = rng.Int63n(p - x + 1)
			}
			ws[i] = Window{Period: p, Active: x, Start: s, Count: span / p}
		}
		got := UnionLength(ws)
		want := bruteUnion(ws)
		if got != want {
			t.Fatalf("trial %d: union = %d, brute = %d, ws = %v", trial, got, want, ws)
		}
		if !UnionExact(ws) {
			t.Fatalf("trial %d: expected exact union", trial)
		}
	}
}

func TestUnionProperties(t *testing.T) {
	// Union >= max member, <= min(span, sum of members).
	f := func(p1, p2, x1, x2 uint8) bool {
		per1 := int64(p1%6) + 1
		per2 := int64(p2%6) + 1
		a1 := int64(x1) % (per1 + 1)
		a2 := int64(x2) % (per2 + 1)
		span := per1 * per2 * 4
		ws := []Window{
			Tail(per1, a1, span/per1),
			Tail(per2, a2, span/per2),
		}
		u := UnionLength(ws)
		lo := ws[0].TotalActive()
		if ws[1].TotalActive() > lo {
			lo = ws[1].TotalActive()
		}
		hi := ws[0].TotalActive() + ws[1].TotalActive()
		if span < hi {
			hi = span
		}
		return u >= lo && u <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectLength(t *testing.T) {
	// Same window: intersection = total active.
	a := Tail(8, 2, 4)
	if got := IntersectLength(a, a); got != a.TotalActive() {
		t.Errorf("self intersect = %d", got)
	}
	// Disjoint actives.
	b := Window{Period: 8, Active: 2, Start: 0, Count: 4}
	if got := IntersectLength(a, b); got != 0 {
		t.Errorf("disjoint intersect = %d", got)
	}
	// Full vs tail: intersection = tail's active.
	if got := IntersectLength(Full(8, 4), a); got != a.TotalActive() {
		t.Errorf("full∩tail = %d", got)
	}
	// Brute-force check on coprime periods.
	c := Tail(3, 1, 10)
	d := Tail(5, 2, 6)
	want := int64(0)
	for tm := int64(0); tm < 30; tm++ {
		if c.ActiveAt(tm) && d.ActiveAt(tm) {
			want++
		}
	}
	if got := IntersectLength(c, d); got != want {
		t.Errorf("coprime intersect = %d, want %d", got, want)
	}
}

func TestIntersectPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntersectLength on invalid window did not panic")
		}
	}()
	IntersectLength(Window{Period: 0}, Full(4, 1))
}

func TestUnionFallbackMonotone(t *testing.T) {
	// Construct a pathological pair (huge coprime periods) that would
	// exceed the interval cap, and check the fallback lower bound.
	a := Tail(1<<20+1, 1, 1<<12)
	b := Tail(1<<20-1, 1, 1<<12)
	u := UnionLength([]Window{a, b})
	if u < a.TotalActive() && u < b.TotalActive() {
		t.Errorf("fallback union %d below both members", u)
	}
}

func TestWindowString(t *testing.T) {
	s := Tail(8, 2, 3).String()
	if s != "{P=8 X=2 S=6 Z=3}" {
		t.Errorf("String = %q", s)
	}
}
