package periodic

import (
	"testing"
	"testing/quick"
)

// Union is monotone: adding a window never shrinks the union.
func TestUnionMonotone(t *testing.T) {
	f := func(p1, p2, x1, x2, s1, s2 uint8) bool {
		mk := func(p, x, s uint8) Window {
			per := int64(p%6) + 1
			act := int64(x) % (per + 1)
			st := int64(0)
			if per-act > 0 {
				st = int64(s) % (per - act + 1)
			}
			span := int64(60)
			return Window{Period: per, Active: act, Start: st, Count: span / per}
		}
		a, b := mk(p1, x1, s1), mk(p2, x2, s2)
		return UnionLength([]Window{a, b}) >= UnionLength([]Window{a})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Union of a window with itself equals its own total active length.
func TestUnionIdempotent(t *testing.T) {
	f := func(p, x uint8) bool {
		per := int64(p%7) + 1
		act := int64(x) % (per + 1)
		w := Tail(per, act, 8)
		return UnionLength([]Window{w, w, w}) == w.TotalActive()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Intersection is bounded by the smaller member and is symmetric.
func TestIntersectBoundsAndSymmetry(t *testing.T) {
	f := func(p1, p2, x1, x2 uint8) bool {
		a := Tail(int64(p1%5)+1, int64(x1)%(int64(p1%5)+2), 12)
		b := Tail(int64(p2%5)+1, int64(x2)%(int64(p2%5)+2), 12)
		if a.Active > a.Period {
			a.Active = a.Period
		}
		if b.Active > b.Period {
			b.Active = b.Period
		}
		a = Tail(a.Period, a.Active, 12)
		b = Tail(b.Period, b.Active, 12)
		ab := IntersectLength(a, b)
		ba := IntersectLength(b, a)
		minTA := a.TotalActive()
		if b.TotalActive() < minTA {
			minTA = b.TotalActive()
		}
		return ab == ba && ab <= minTA && ab >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Inclusion-exclusion: |A| + |B| = |A∪B| + |A∩B| for equal spans.
func TestInclusionExclusion(t *testing.T) {
	cases := [][2]Window{
		{Tail(4, 2, 6), Tail(6, 3, 4)},
		{Tail(3, 1, 8), Full(4, 6)},
		{Window{Period: 8, Active: 3, Start: 1, Count: 3}, Window{Period: 8, Active: 4, Start: 4, Count: 3}},
	}
	for i, c := range cases {
		a, b := c[0], c[1]
		// Equalize spans.
		span := a.Span()
		if b.Span() < span {
			span = b.Span()
		}
		a.Count = span / a.Period
		b.Count = span / b.Period
		lhs := a.TotalActive() + b.TotalActive()
		rhs := UnionLength([]Window{a, b}) + IntersectLength(a, b)
		if lhs != rhs {
			t.Errorf("case %d: |A|+|B| = %d, |A∪B|+|A∩B| = %d", i, lhs, rhs)
		}
	}
}

// A window's ActiveAt count over its span equals TotalActive.
func TestActiveAtConsistent(t *testing.T) {
	f := func(p, x, s uint8) bool {
		per := int64(p%6) + 2
		act := int64(x) % (per + 1)
		st := int64(0)
		if per-act > 0 {
			st = int64(s) % (per - act + 1)
		}
		w := Window{Period: per, Active: act, Start: st, Count: 5}
		if w.Validate() != nil {
			return true
		}
		var n int64
		for t := int64(0); t < w.Span(); t++ {
			if w.ActiveAt(t) {
				n++
			}
		}
		return n == w.TotalActive()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestUnionManyWindowsVsReference cross-checks the k-way merge union against
// an independent sort-then-sweep reference for window sets larger than the
// fuzzer's pairs (the merge's cursor interplay only shows up at k > 2).
func TestUnionManyWindowsVsReference(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int64) int64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		v := int64(rng % uint64(n))
		return v
	}
	for trial := 0; trial < 2000; trial++ {
		k := 2 + int(next(6))
		ws := make([]Window, 0, k)
		for i := 0; i < k; i++ {
			p := 1 + next(24)
			a := next(p + 1)
			s := int64(0)
			if a < p {
				s = next(p - a + 1)
			}
			z := next(9)
			ws = append(ws, Window{Period: p, Active: a, Start: s, Count: z})
		}
		got, exact := Union(ws)
		if !exact {
			continue
		}
		// Reference: mark a bitmap over the max span.
		span := int64(0)
		for _, w := range ws {
			if w.Span() > span {
				span = w.Span()
			}
		}
		var want int64
		for tm := int64(0); tm < span; tm++ {
			for _, w := range ws {
				if w.ActiveAt(tm) {
					want++
					break
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: union %d != brute %d for %v", trial, got, want, ws)
		}
	}
}
