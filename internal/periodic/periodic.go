// Package periodic models the finite periodic operation pattern of a unit
// memory's data-transfer link (paper Fig. 2(a), Step 1): a window function
// with four parameters — period (Mem_CC), active length within one period
// (X), active start offset within one period (S), and number of periods (Z).
// The total allowed memory-updating window MUW_u of a link is the total
// active length X*Z; Step 2 combines links sharing a physical port by taking
// the UNION of their window sets, which this package computes exactly via
// interval merging over the windows' common hyperperiod.
package periodic

import (
	"fmt"
)

// Window is a finite periodic activity pattern: Count periods of length
// Period, each with an active interval [Start, Start+Active) that must not
// wrap past the period boundary.
type Window struct {
	Period int64 // cycles per period (Mem_CC); > 0
	Active int64 // active cycles per period (X); 0 <= Active <= Period
	Start  int64 // active start offset within the period (S)
	Count  int64 // number of periods (Z); >= 0
}

// Full returns a window that is active for its entire span: count periods
// of length period, fully active. This models double-buffered memories and
// single-buffered memories with a relevant loop on top (paper Fig. 3(a-c)),
// whose updates may overlap computation at any time.
func Full(period, count int64) Window {
	return Window{Period: period, Active: period, Start: 0, Count: count}
}

// Tail returns a window active only for the LAST active cycles of each
// period: the "memory update keep-out zone" pattern of single-buffered
// memories with an irrelevant loop on top (paper Fig. 3(d-f)) — the held
// data is being reused and may only be replaced at the end of the period.
func Tail(period, active, count int64) Window {
	if active > period {
		active = period
	}
	return Window{Period: period, Active: active, Start: period - active, Count: count}
}

// Validate reports structural errors.
func (w Window) Validate() error {
	if w.Period <= 0 {
		return fmt.Errorf("periodic: non-positive period %d", w.Period)
	}
	if w.Active < 0 || w.Active > w.Period {
		return fmt.Errorf("periodic: active %d outside [0, period %d]", w.Active, w.Period)
	}
	if w.Start < 0 || w.Start+w.Active > w.Period {
		return fmt.Errorf("periodic: active interval [%d,%d) exceeds period %d", w.Start, w.Start+w.Active, w.Period)
	}
	if w.Count < 0 {
		return fmt.Errorf("periodic: negative count %d", w.Count)
	}
	return nil
}

// Span is the total time covered by the window: Period * Count.
func (w Window) Span() int64 { return w.Period * w.Count }

// TotalActive is the total active length across all periods: Active * Count.
// For a DTL this is MUW_u = X_REQ * Z.
func (w Window) TotalActive() int64 { return w.Active * w.Count }

// IsFull reports whether the window is active over its whole span.
func (w Window) IsFull() bool { return w.Active == w.Period }

// ActiveAt reports whether absolute cycle t lies in an active interval.
func (w Window) ActiveAt(t int64) bool {
	if t < 0 || t >= w.Span() {
		return false
	}
	ph := t % w.Period
	return ph >= w.Start && ph < w.Start+w.Active
}

// String renders the window compactly.
func (w Window) String() string {
	return fmt.Sprintf("{P=%d X=%d S=%d Z=%d}", w.Period, w.Active, w.Start, w.Count)
}

// maxUnionIntervals bounds the exact interval expansion; beyond it
// UnionLength falls back to a conservative (stall-overestimating) bound.
// See DESIGN.md ("no silent caps"): callers can detect the fallback via
// UnionExact.
const maxUnionIntervals = 1 << 21

// gcd of two non-negative ints.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// hyperperiod returns the least common multiple of the windows' periods,
// saturating at limit (returns limit+1 when exceeded).
func hyperperiod(ws []Window, limit int64) int64 {
	h := int64(1)
	for _, w := range ws {
		g := gcd(h, w.Period)
		h = h / g * w.Period
		if h > limit || h <= 0 {
			return limit + 1
		}
	}
	return h
}

// UnionLength returns the total length of the union of the windows' active
// sets, measured over [0, span) where span is the maximum window span. This
// is MUW_comb of the paper's Step 2. Windows must be valid.
func UnionLength(ws []Window) int64 {
	n, _ := unionLength(ws, nil)
	return n
}

// Union returns UnionLength and UnionExact in a single pass — the form the
// latency model's hot path uses, since it always needs both.
func Union(ws []Window) (length int64, exact bool) {
	return unionLength(ws, nil)
}

// UnionScratch carries the cursor buffer of the union computation so that
// repeated UnionWith calls (one per physical port per model evaluation)
// reuse it instead of allocating.
type UnionScratch struct {
	runs []mergeRun
}

// UnionWith is Union with caller-provided scratch (nil behaves like Union).
func UnionWith(ws []Window, sc *UnionScratch) (length int64, exact bool) {
	return unionLength(ws, sc)
}

// UnionExact reports whether UnionLength would compute the exact union for
// these windows (as opposed to the conservative fallback bound).
func UnionExact(ws []Window) bool {
	_, exact := unionLength(ws, nil)
	return exact
}

func unionLength(ws []Window, sc *UnionScratch) (int64, bool) {
	if sc == nil {
		sc = &UnionScratch{}
	}
	// Drop empty windows.
	live := ws[:0:0]
	span := int64(0)
	for _, w := range ws {
		if w.Span() > span {
			span = w.Span()
		}
		if w.TotalActive() > 0 {
			live = append(live, w)
		}
	}
	if len(live) == 0 || span == 0 {
		return 0, true
	}
	// Fast path: any full window covering the whole span covers everything.
	for _, w := range live {
		if w.IsFull() && w.Span() == span {
			return span, true
		}
	}
	if len(live) == 1 {
		return live[0].TotalActive(), true
	}

	h := hyperperiod(live, span)
	if h > span {
		h = span
	}
	// Estimate the interval count; fall back if pathological.
	var count int64
	for _, w := range live {
		count += h/w.Period + 1
	}
	if count > maxUnionIntervals {
		// Conservative fallback: the union is at least as long as the
		// longest member (underestimating the union overestimates the
		// combined stall — safe for a latency bound).
		best := int64(0)
		for _, w := range live {
			if ta := w.TotalActive(); ta > best {
				best = ta
			}
		}
		return best, false
	}

	runs := sc.runs[:0]
	for _, w := range live {
		limit := h
		if wspan := w.Span(); wspan < limit {
			limit = wspan
		}
		runs = append(runs, mergeRun{period: w.Period, start: w.Start, active: w.Active, limit: limit})
	}
	sc.runs = runs
	perH := mergedLength(runs)

	if h >= span {
		return perH, true
	}
	// The union pattern repeats every h cycles for windows spanning the
	// full range; windows with shorter spans only contribute to their own
	// prefix. When all spans equal the max span the repetition is exact.
	allFullSpan := true
	for _, w := range live {
		if w.Span() != span {
			allFullSpan = false
			break
		}
	}
	if allFullSpan {
		return perH * (span / h), true
	}
	// Mixed spans: compute exactly over the whole range if affordable.
	var fullCount int64
	for _, w := range live {
		fullCount += w.Count + 1
	}
	if fullCount <= maxUnionIntervals {
		runs = runs[:0]
		for _, w := range live {
			runs = append(runs, mergeRun{period: w.Period, start: w.Start, active: w.Active, limit: w.Span()})
		}
		sc.runs = runs
		return mergedLength(runs), true
	}
	best := int64(0)
	for _, w := range live {
		if ta := w.TotalActive(); ta > best {
			best = ta
		}
	}
	return best, false
}

// mergeRun is one window's cursor in the k-way interval merge: it yields the
// window's active intervals [base+start, base+start+active) for base = 0,
// period, 2·period, … clipped to limit, in increasing order. Because every
// window emits its intervals already sorted, the union needs no global sort —
// a k-way merge over the cursors visits the same intervals in the same
// left-to-right order the old sort-then-sweep produced, and the measure of a
// union is a set property, so the result is identical.
type mergeRun struct {
	period, start, active int64
	base                  int64 // next interval base offset
	limit                 int64 // clip bound (exclusive)
}

// mergedLength sweeps the k cursors left to right and returns the total
// length of the union of their intervals. k is the number of windows sharing
// a physical port — a handful — so the linear min-scan per step beats any
// heap bookkeeping.
func mergedLength(runs []mergeRun) int64 {
	var total int64
	curLo, curHi := int64(0), int64(-1) // curHi < curLo ⇔ no open interval
	for {
		best := -1
		var bestLo int64
		for i := range runs {
			r := &runs[i]
			lo := r.base + r.start
			if lo >= r.limit || r.active == 0 {
				continue
			}
			if best < 0 || lo < bestLo {
				best, bestLo = i, lo
			}
		}
		if best < 0 {
			break
		}
		r := &runs[best]
		lo := r.base + r.start
		hi := lo + r.active
		if hi > r.limit {
			hi = r.limit
		}
		r.base += r.period
		switch {
		case curHi < curLo:
			curLo, curHi = lo, hi
		case lo > curHi:
			total += curHi - curLo
			curLo, curHi = lo, hi
		case hi > curHi:
			curHi = hi
		}
	}
	if curHi >= curLo {
		total += curHi - curLo
	}
	return total
}

// IntersectLength returns the total length of the intersection of the two
// windows' active sets over the overlap of their spans. The model's Step 2
// uses unions; intersections support analyses of guaranteed-conflict time.
func IntersectLength(a, b Window) int64 {
	if err := a.Validate(); err != nil {
		panic(err)
	}
	if err := b.Validate(); err != nil {
		panic(err)
	}
	span := a.Span()
	if s := b.Span(); s < span {
		span = s
	}
	if span == 0 || a.Active == 0 || b.Active == 0 {
		return 0
	}
	h := int64(1)
	g := gcd(a.Period, b.Period)
	h = a.Period / g * b.Period
	if h > span {
		h = span
	}
	var total int64
	// Walk a's intervals within one hyperperiod and clip against b.
	count := int64(0)
	for base := int64(0); base < h; base += a.Period {
		lo, hi := base+a.Start, base+a.Start+a.Active
		if lo >= h {
			break
		}
		if hi > h {
			hi = h
		}
		total += overlapWithPeriodic(lo, hi, b)
		count++
		if count > maxUnionIntervals {
			break
		}
	}
	if h >= span {
		return total
	}
	return total * (span / h)
}

// overlapWithPeriodic returns |[lo,hi) ∩ active(b)| assuming hi-lo fits in
// a few of b's periods.
func overlapWithPeriodic(lo, hi int64, b Window) int64 {
	var total int64
	base := lo - lo%b.Period
	for ; base < hi; base += b.Period {
		blo, bhi := base+b.Start, base+b.Start+b.Active
		s, e := blo, bhi
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			total += e - s
		}
	}
	return total
}
