// Package periodic models the finite periodic operation pattern of a unit
// memory's data-transfer link (paper Fig. 2(a), Step 1): a window function
// with four parameters — period (Mem_CC), active length within one period
// (X), active start offset within one period (S), and number of periods (Z).
// The total allowed memory-updating window MUW_u of a link is the total
// active length X*Z; Step 2 combines links sharing a physical port by taking
// the UNION of their window sets, which this package computes exactly via
// interval merging over the windows' common hyperperiod.
package periodic

import (
	"fmt"
	"sort"
)

// Window is a finite periodic activity pattern: Count periods of length
// Period, each with an active interval [Start, Start+Active) that must not
// wrap past the period boundary.
type Window struct {
	Period int64 // cycles per period (Mem_CC); > 0
	Active int64 // active cycles per period (X); 0 <= Active <= Period
	Start  int64 // active start offset within the period (S)
	Count  int64 // number of periods (Z); >= 0
}

// Full returns a window that is active for its entire span: count periods
// of length period, fully active. This models double-buffered memories and
// single-buffered memories with a relevant loop on top (paper Fig. 3(a-c)),
// whose updates may overlap computation at any time.
func Full(period, count int64) Window {
	return Window{Period: period, Active: period, Start: 0, Count: count}
}

// Tail returns a window active only for the LAST active cycles of each
// period: the "memory update keep-out zone" pattern of single-buffered
// memories with an irrelevant loop on top (paper Fig. 3(d-f)) — the held
// data is being reused and may only be replaced at the end of the period.
func Tail(period, active, count int64) Window {
	if active > period {
		active = period
	}
	return Window{Period: period, Active: active, Start: period - active, Count: count}
}

// Validate reports structural errors.
func (w Window) Validate() error {
	if w.Period <= 0 {
		return fmt.Errorf("periodic: non-positive period %d", w.Period)
	}
	if w.Active < 0 || w.Active > w.Period {
		return fmt.Errorf("periodic: active %d outside [0, period %d]", w.Active, w.Period)
	}
	if w.Start < 0 || w.Start+w.Active > w.Period {
		return fmt.Errorf("periodic: active interval [%d,%d) exceeds period %d", w.Start, w.Start+w.Active, w.Period)
	}
	if w.Count < 0 {
		return fmt.Errorf("periodic: negative count %d", w.Count)
	}
	return nil
}

// Span is the total time covered by the window: Period * Count.
func (w Window) Span() int64 { return w.Period * w.Count }

// TotalActive is the total active length across all periods: Active * Count.
// For a DTL this is MUW_u = X_REQ * Z.
func (w Window) TotalActive() int64 { return w.Active * w.Count }

// IsFull reports whether the window is active over its whole span.
func (w Window) IsFull() bool { return w.Active == w.Period }

// ActiveAt reports whether absolute cycle t lies in an active interval.
func (w Window) ActiveAt(t int64) bool {
	if t < 0 || t >= w.Span() {
		return false
	}
	ph := t % w.Period
	return ph >= w.Start && ph < w.Start+w.Active
}

// String renders the window compactly.
func (w Window) String() string {
	return fmt.Sprintf("{P=%d X=%d S=%d Z=%d}", w.Period, w.Active, w.Start, w.Count)
}

// interval is a half-open [lo, hi) cycle range.
type interval struct{ lo, hi int64 }

// maxUnionIntervals bounds the exact interval expansion; beyond it
// UnionLength falls back to a conservative (stall-overestimating) bound.
// See DESIGN.md ("no silent caps"): callers can detect the fallback via
// UnionExact.
const maxUnionIntervals = 1 << 21

// gcd of two non-negative ints.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// hyperperiod returns the least common multiple of the windows' periods,
// saturating at limit (returns limit+1 when exceeded).
func hyperperiod(ws []Window, limit int64) int64 {
	h := int64(1)
	for _, w := range ws {
		g := gcd(h, w.Period)
		h = h / g * w.Period
		if h > limit || h <= 0 {
			return limit + 1
		}
	}
	return h
}

// UnionLength returns the total length of the union of the windows' active
// sets, measured over [0, span) where span is the maximum window span. This
// is MUW_comb of the paper's Step 2. Windows must be valid.
func UnionLength(ws []Window) int64 {
	n, _ := unionLength(ws, nil)
	return n
}

// Union returns UnionLength and UnionExact in a single pass — the form the
// latency model's hot path uses, since it always needs both.
func Union(ws []Window) (length int64, exact bool) {
	return unionLength(ws, nil)
}

// UnionScratch carries the interval buffer of the union computation so that
// repeated UnionWith calls (one per physical port per model evaluation)
// reuse it instead of allocating.
type UnionScratch struct {
	ivs []interval
}

// UnionWith is Union with caller-provided scratch (nil behaves like Union).
func UnionWith(ws []Window, sc *UnionScratch) (length int64, exact bool) {
	return unionLength(ws, sc)
}

// UnionExact reports whether UnionLength would compute the exact union for
// these windows (as opposed to the conservative fallback bound).
func UnionExact(ws []Window) bool {
	_, exact := unionLength(ws, nil)
	return exact
}

func unionLength(ws []Window, sc *UnionScratch) (int64, bool) {
	if sc == nil {
		sc = &UnionScratch{}
	}
	// Drop empty windows.
	live := ws[:0:0]
	span := int64(0)
	for _, w := range ws {
		if w.Span() > span {
			span = w.Span()
		}
		if w.TotalActive() > 0 {
			live = append(live, w)
		}
	}
	if len(live) == 0 || span == 0 {
		return 0, true
	}
	// Fast path: any full window covering the whole span covers everything.
	for _, w := range live {
		if w.IsFull() && w.Span() == span {
			return span, true
		}
	}
	if len(live) == 1 {
		return live[0].TotalActive(), true
	}

	h := hyperperiod(live, span)
	if h > span {
		h = span
	}
	// Estimate the interval count; fall back if pathological.
	var count int64
	for _, w := range live {
		count += h/w.Period + 1
	}
	if count > maxUnionIntervals {
		// Conservative fallback: the union is at least as long as the
		// longest member (underestimating the union overestimates the
		// combined stall — safe for a latency bound).
		best := int64(0)
		for _, w := range live {
			if ta := w.TotalActive(); ta > best {
				best = ta
			}
		}
		return best, false
	}

	ivs := sc.ivs[:0]
	for _, w := range live {
		wspan := w.Span()
		limit := h
		if wspan < limit {
			limit = wspan
		}
		for base := int64(0); base < limit; base += w.Period {
			lo := base + w.Start
			hi := lo + w.Active
			if lo >= limit {
				break
			}
			if hi > limit {
				hi = limit
			}
			ivs = append(ivs, interval{lo, hi})
		}
	}
	sc.ivs = ivs
	perH := mergeLength(ivs)

	if h >= span {
		return perH, true
	}
	// The union pattern repeats every h cycles for windows spanning the
	// full range; windows with shorter spans only contribute to their own
	// prefix. When all spans equal the max span the repetition is exact.
	allFullSpan := true
	for _, w := range live {
		if w.Span() != span {
			allFullSpan = false
			break
		}
	}
	if allFullSpan {
		return perH * (span / h), true
	}
	// Mixed spans: compute exactly over the whole range if affordable.
	var fullCount int64
	for _, w := range live {
		fullCount += w.Count + 1
	}
	if fullCount <= maxUnionIntervals {
		ivs = ivs[:0]
		for _, w := range live {
			for base := int64(0); base < w.Span(); base += w.Period {
				ivs = append(ivs, interval{base + w.Start, base + w.Start + w.Active})
			}
		}
		sc.ivs = ivs
		return mergeLength(ivs), true
	}
	best := int64(0)
	for _, w := range live {
		if ta := w.TotalActive(); ta > best {
			best = ta
		}
	}
	return best, false
}

// mergeLength sorts and merges intervals and returns their total length.
func mergeLength(ivs []interval) int64 {
	if len(ivs) == 0 {
		return 0
	}
	if len(ivs) <= 48 {
		// Insertion sort: the common case has a handful of intervals, and
		// sort.Slice's closure and interface boxing allocate on every call.
		for i := 1; i < len(ivs); i++ {
			for j := i; j > 0 && ivs[j].lo < ivs[j-1].lo; j-- {
				ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
			}
		}
	} else {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	}
	total := int64(0)
	curLo, curHi := ivs[0].lo, ivs[0].hi
	for _, iv := range ivs[1:] {
		if iv.lo > curHi {
			total += curHi - curLo
			curLo, curHi = iv.lo, iv.hi
			continue
		}
		if iv.hi > curHi {
			curHi = iv.hi
		}
	}
	total += curHi - curLo
	return total
}

// IntersectLength returns the total length of the intersection of the two
// windows' active sets over the overlap of their spans. The model's Step 2
// uses unions; intersections support analyses of guaranteed-conflict time.
func IntersectLength(a, b Window) int64 {
	if err := a.Validate(); err != nil {
		panic(err)
	}
	if err := b.Validate(); err != nil {
		panic(err)
	}
	span := a.Span()
	if s := b.Span(); s < span {
		span = s
	}
	if span == 0 || a.Active == 0 || b.Active == 0 {
		return 0
	}
	h := int64(1)
	g := gcd(a.Period, b.Period)
	h = a.Period / g * b.Period
	if h > span {
		h = span
	}
	var total int64
	// Walk a's intervals within one hyperperiod and clip against b.
	count := int64(0)
	for base := int64(0); base < h; base += a.Period {
		lo, hi := base+a.Start, base+a.Start+a.Active
		if lo >= h {
			break
		}
		if hi > h {
			hi = h
		}
		total += overlapWithPeriodic(lo, hi, b)
		count++
		if count > maxUnionIntervals {
			break
		}
	}
	if h >= span {
		return total
	}
	return total * (span / h)
}

// overlapWithPeriodic returns |[lo,hi) ∩ active(b)| assuming hi-lo fits in
// a few of b's periods.
func overlapWithPeriodic(lo, hi int64, b Window) int64 {
	var total int64
	base := lo - lo%b.Period
	for ; base < hi; base += b.Period {
		blo, bhi := base+b.Start, base+b.Start+b.Active
		s, e := blo, bhi
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			total += e - s
		}
	}
	return total
}
