package arch

import (
	"testing"

	"repro/internal/loops"
)

func TestPortDirAllows(t *testing.T) {
	if !Read.Allows(false) || Read.Allows(true) {
		t.Error("Read port direction wrong")
	}
	if !Write.Allows(true) || Write.Allows(false) {
		t.Error("Write port direction wrong")
	}
	if !ReadWrite.Allows(true) || !ReadWrite.Allows(false) {
		t.Error("ReadWrite port direction wrong")
	}
	if Read.String() != "R" || Write.String() != "W" || ReadWrite.String() != "RW" {
		t.Error("PortDir strings wrong")
	}
	if PortDir(9).String() != "PortDir(9)" || PortDir(9).Allows(true) {
		t.Error("invalid PortDir behaviour wrong")
	}
}

func TestAccessString(t *testing.T) {
	if (Access{loops.W, false}).String() != "W:rd" {
		t.Error("read access string wrong")
	}
	if (Access{loops.O, true}).String() != "O:wr" {
		t.Error("write access string wrong")
	}
}

func testMemory() *Memory {
	return &Memory{
		Name:         "GB",
		CapacityBits: 1024,
		Serves:       []loops.Operand{loops.W, loops.O},
		Ports: []Port{
			{Name: "rd", Dir: Read, BWBits: 128},
			{Name: "wr", Dir: Write, BWBits: 64},
		},
	}
}

func TestMemoryNormalizeAssignsPorts(t *testing.T) {
	m := testMemory()
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	p, idx, err := m.Port(Access{loops.W, false})
	if err != nil || idx != 0 || p.Name != "rd" {
		t.Errorf("W read assigned to port %d (%v)", idx, err)
	}
	p, idx, err = m.Port(Access{loops.O, true})
	if err != nil || idx != 1 || p.Name != "wr" {
		t.Errorf("O write assigned to port %d (%v)", idx, err)
	}
}

func TestMemoryNormalizeRespectsExplicit(t *testing.T) {
	m := testMemory()
	m.Ports = append(m.Ports, Port{Name: "rd2", Dir: Read, BWBits: 32})
	m.PortOf = map[Access]int{{loops.O, false}: 2}
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	_, idx, _ := m.Port(Access{loops.O, false})
	if idx != 2 {
		t.Errorf("explicit assignment overridden: port %d", idx)
	}
	_, idx, _ = m.Port(Access{loops.W, false})
	if idx != 0 {
		t.Errorf("default assignment wrong: port %d", idx)
	}
}

func TestMemoryNormalizeNoUsablePort(t *testing.T) {
	m := &Memory{
		Name:         "bad",
		CapacityBits: 8,
		Serves:       []loops.Operand{loops.W},
		Ports:        []Port{{Name: "rd", Dir: Read, BWBits: 8}},
	}
	if err := m.Normalize(); err == nil {
		t.Error("memory with no write port normalized")
	}
}

func TestMemoryValidate(t *testing.T) {
	m := testMemory()
	if err := m.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	cases := []func(*Memory){
		func(m *Memory) { m.Name = "" },
		func(m *Memory) { m.CapacityBits = 0 },
		func(m *Memory) { m.Serves = nil },
		func(m *Memory) { m.Serves = []loops.Operand{loops.W, loops.W} },
		func(m *Memory) { m.Ports = nil },
		func(m *Memory) { m.Ports[0].BWBits = 0 },
		func(m *Memory) { m.PortOf[Access{loops.I, false}] = 0 }, // unserved operand
		func(m *Memory) { m.PortOf[Access{loops.W, false}] = 5 }, // bad index
		func(m *Memory) { m.PortOf[Access{loops.W, true}] = 0 },  // write on read port
	}
	for i, mutate := range cases {
		mm := testMemory()
		if err := mm.Normalize(); err != nil {
			t.Fatal(err)
		}
		mutate(mm)
		if err := mm.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestMapperCapacity(t *testing.T) {
	m := testMemory()
	if m.MapperCapacityBits() != 1024 {
		t.Error("single-buffered capacity halved")
	}
	m.DoubleBuffered = true
	if m.MapperCapacityBits() != 512 {
		t.Error("double-buffered capacity not halved (Table I)")
	}
}

func TestPortErrors(t *testing.T) {
	m := testMemory()
	if _, _, err := m.Port(Access{loops.W, false}); err == nil {
		t.Error("Port before Normalize succeeded")
	}
	m.PortOf = map[Access]int{{loops.W, false}: 9}
	if _, _, err := m.Port(Access{loops.W, false}); err == nil {
		t.Error("out-of-range port index not caught")
	}
}

func TestPresetsValid(t *testing.T) {
	for _, a := range []*Arch{InHouse(), CaseStudy(), RowStationary(), TPULike()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
	if got := RowStationarySpatial().Product(); got != RowStationary().MACs {
		t.Errorf("row-stationary spatial product %d != MACs", got)
	}
	if got := TPULikeSpatial().Product(); got != TPULike().MACs {
		t.Errorf("tpu-like spatial product %d != MACs", got)
	}
	// The TPU-like unified buffer is the shared-single-port configuration
	// the paper says prior models cannot express.
	ub := TPULike().MemoryByName("UB")
	if len(ub.Ports) != 1 || ub.Ports[0].Dir != ReadWrite || ub.DoubleBuffered {
		t.Error("UB is not a single-ported, single-buffered shared memory")
	}
	if !ub.ServesOperand(loops.I) || !ub.ServesOperand(loops.O) {
		t.Error("UB does not serve both I and O")
	}
}

func TestInHouseShape(t *testing.T) {
	a := InHouse()
	if a.MACs != 1024 {
		t.Errorf("MACs = %d, want 1024", a.MACs)
	}
	if got := InHouseSpatial().Product(); got != 1024 {
		t.Errorf("spatial product = %d, want 1024", got)
	}
	if a.Levels(loops.W) != 3 || a.Levels(loops.I) != 3 || a.Levels(loops.O) != 2 {
		t.Error("chain lengths wrong")
	}
	gb := a.MemoryByName("GB")
	if gb == nil || !gb.ServesOperand(loops.O) || gb.CapacityBits != 8*1024*1024*8/8*1 {
		t.Errorf("GB wrong: %+v", gb)
	}
	wlb := a.MemoryByName("W-LB")
	if !wlb.DoubleBuffered {
		t.Error("W-LB should be double-buffered")
	}
	if wlb.MapperCapacityBits() != wlb.CapacityBits/2 {
		t.Error("W-LB mapper capacity wrong")
	}
}

func TestCaseStudyShape(t *testing.T) {
	a := CaseStudy()
	if a.MACs != 256 {
		t.Errorf("MACs = %d, want 256", a.MACs)
	}
	if got := CaseStudySpatial().Product(); got != 256 {
		t.Errorf("spatial product = %d, want 256", got)
	}
	gb := a.MemoryByName("GB")
	for _, p := range gb.Ports {
		if p.BWBits != 128 {
			t.Errorf("GB port %s BW = %d, want 128 (paper Section V)", p.Name, p.BWBits)
		}
	}
	// O bypasses the LB level.
	if a.Levels(loops.O) != 2 || a.Chain[loops.O][1] != "GB" {
		t.Error("O chain should be O-Reg -> GB")
	}
}

func TestArchValidateErrors(t *testing.T) {
	base := CaseStudy()

	a := base.Clone()
	a.MACs = 0
	if err := a.Validate(); err == nil {
		t.Error("zero MACs validated")
	}

	a = base.Clone()
	a.Memories = append(a.Memories, a.Memories[0])
	if err := a.Validate(); err == nil {
		t.Error("duplicate memory validated")
	}

	a = base.Clone()
	a.Chain[loops.W] = nil
	if err := a.Validate(); err == nil {
		t.Error("empty chain validated")
	}

	a = base.Clone()
	a.Chain[loops.W] = []string{"nope"}
	if err := a.Validate(); err == nil {
		t.Error("unknown chain memory validated")
	}

	a = base.Clone()
	a.Chain[loops.W] = []string{"I-LB"} // does not serve W
	if err := a.Validate(); err == nil {
		t.Error("chain through non-serving memory validated")
	}

	a = base.Clone()
	a.Chain[loops.W] = []string{"W-Reg", "W-LB", "GB", "W-LB"}
	if err := a.Validate(); err == nil {
		t.Error("repeated chain memory validated")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := CaseStudy()
	c := a.Clone()
	c.MemoryByName("GB").Ports[0].BWBits = 999
	if a.MemoryByName("GB").Ports[0].BWBits == 999 {
		t.Error("Clone aliases ports")
	}
	c.Chain[loops.W][0] = "X"
	if a.Chain[loops.W][0] == "X" {
		t.Error("Clone aliases chains")
	}
	c.MemoryByName("W-Reg").PortOf[Access{loops.W, false}] = 0
	// just ensure no panic and maps are distinct
	if len(c.MemoryByName("W-Reg").PortOf) != len(a.MemoryByName("W-Reg").PortOf) {
		t.Log("PortOf maps differ in size (expected if clone added entries)")
	}
}

func TestStallCombineString(t *testing.T) {
	if Concurrent.String() != "max" || Sequential.String() != "sum" {
		t.Error("StallCombine strings wrong")
	}
}

func TestMemoryByNameMissing(t *testing.T) {
	a := CaseStudy()
	if a.MemoryByName("missing") != nil {
		t.Error("MemoryByName(missing) != nil")
	}
}

func TestChainMems(t *testing.T) {
	a := CaseStudy()
	mems := a.ChainMems(loops.I)
	if len(mems) != 3 || mems[0].Name != "I-Reg" || mems[2].Name != "GB" {
		t.Errorf("ChainMems(I) = %v", mems)
	}
}
