// Package arch describes DNN accelerator hardware: the MAC array and the
// multi-level memory system — per-memory capacity, bandwidth, port
// configuration, double-buffering and operand sharing — that the latency
// model consumes (paper Section II-A-2).
//
// A physical memory module may be shared by several operands (the model's
// Step 1 virtually divides it into Unit Memories) and exposes one or more
// physical ports; each (operand, access-direction) pair at a memory is
// assigned to one port, so that several data-transfer links (DTLs) may
// contend for the same port (the model's Step 2 combines them).
package arch

import (
	"fmt"
	"sync"

	"repro/internal/loops"
)

// PortDir tells which access directions a physical memory port supports.
type PortDir uint8

// Port directions.
const (
	Read PortDir = iota
	Write
	ReadWrite
)

// String returns "R", "W" or "RW".
func (d PortDir) String() string {
	switch d {
	case Read:
		return "R"
	case Write:
		return "W"
	case ReadWrite:
		return "RW"
	}
	return fmt.Sprintf("PortDir(%d)", uint8(d))
}

// Allows reports whether a port of direction d can serve a write (isWrite)
// or read (!isWrite) access.
func (d PortDir) Allows(isWrite bool) bool {
	switch d {
	case ReadWrite:
		return true
	case Read:
		return !isWrite
	case Write:
		return isWrite
	}
	return false
}

// Port is one physical memory port with a raw bandwidth in bits per cycle.
type Port struct {
	Name   string
	Dir    PortDir
	BWBits int64 // bits transferred per cycle
}

// Access identifies one access class at a memory: operand o reading from or
// writing into the module.
type Access struct {
	Operand loops.Operand
	Write   bool
}

// String renders e.g. "W:rd" or "O:wr".
func (a Access) String() string {
	dir := "rd"
	if a.Write {
		dir = "wr"
	}
	return a.Operand.String() + ":" + dir
}

// Memory is one physical memory module.
type Memory struct {
	Name string

	// CapacityBits is the total physical capacity. For double-buffered
	// memories the mapper-visible capacity is half of this (Table I).
	CapacityBits int64

	// DoubleBuffered memories can always overlap updates with compute;
	// single-buffered memories incur the Table-I keep-out when a reuse
	// (ir) loop is scheduled on top.
	DoubleBuffered bool

	// Serves lists the operands stored in this module.
	Serves []loops.Operand

	// Ports are the physical ports of the module.
	Ports []Port

	// PortOf assigns each access class to a port index. Accesses missing
	// from the map are assigned by Normalize to the first port whose
	// direction allows them.
	PortOf map[Access]int
}

// ServesOperand reports whether the module stores operand op.
func (m *Memory) ServesOperand(op loops.Operand) bool {
	for _, o := range m.Serves {
		if o == op {
			return true
		}
	}
	return false
}

// MapperCapacityBits is the capacity visible to the mapper: half the
// physical capacity for double-buffered modules (Table I), otherwise the
// full capacity.
func (m *Memory) MapperCapacityBits() int64 {
	if m.DoubleBuffered {
		return m.CapacityBits / 2
	}
	return m.CapacityBits
}

// Port returns the port serving access a. Normalize must have run.
func (m *Memory) Port(a Access) (*Port, int, error) {
	idx, ok := m.PortOf[a]
	if !ok {
		return nil, -1, fmt.Errorf("arch: memory %q: no port assigned for access %s", m.Name, a)
	}
	if idx < 0 || idx >= len(m.Ports) {
		return nil, -1, fmt.Errorf("arch: memory %q: port index %d out of range for access %s", m.Name, idx, a)
	}
	return &m.Ports[idx], idx, nil
}

// Normalize fills in default port assignments: every access class (each
// served operand, read and write) not already present in PortOf is assigned
// to the first port whose direction allows it.
func (m *Memory) Normalize() error {
	if m.PortOf == nil {
		m.PortOf = make(map[Access]int)
	}
	for _, op := range m.Serves {
		for _, wr := range []bool{false, true} {
			a := Access{Operand: op, Write: wr}
			if _, ok := m.PortOf[a]; ok {
				continue
			}
			found := -1
			for i, p := range m.Ports {
				if p.Dir.Allows(wr) {
					found = i
					break
				}
			}
			if found < 0 {
				return fmt.Errorf("arch: memory %q: no port can serve access %s", m.Name, a)
			}
			m.PortOf[a] = found
		}
	}
	return nil
}

// Validate checks the module's internal consistency (after Normalize).
func (m *Memory) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("arch: memory with empty name")
	}
	if m.CapacityBits <= 0 {
		return fmt.Errorf("arch: memory %q: non-positive capacity %d", m.Name, m.CapacityBits)
	}
	if len(m.Serves) == 0 {
		return fmt.Errorf("arch: memory %q serves no operands", m.Name)
	}
	seen := map[loops.Operand]bool{}
	for _, op := range m.Serves {
		if seen[op] {
			return fmt.Errorf("arch: memory %q lists operand %s twice", m.Name, op)
		}
		seen[op] = true
	}
	if len(m.Ports) == 0 {
		return fmt.Errorf("arch: memory %q has no ports", m.Name)
	}
	for i, p := range m.Ports {
		if p.BWBits <= 0 {
			return fmt.Errorf("arch: memory %q port %d (%s): non-positive bandwidth %d", m.Name, i, p.Name, p.BWBits)
		}
	}
	for a, idx := range m.PortOf {
		if !m.ServesOperand(a.Operand) {
			return fmt.Errorf("arch: memory %q: port assignment for unserved operand %s", m.Name, a.Operand)
		}
		if idx < 0 || idx >= len(m.Ports) {
			return fmt.Errorf("arch: memory %q: access %s assigned to invalid port %d", m.Name, a, idx)
		}
		if !m.Ports[idx].Dir.Allows(a.Write) {
			return fmt.Errorf("arch: memory %q: access %s assigned to %s port %q", m.Name, a, m.Ports[idx].Dir, m.Ports[idx].Name)
		}
	}
	return nil
}

// StallCombine selects how Step 3 integrates the stall contributions of a
// set of memory modules: memories that operate concurrently hide each
// other's stalls (max), memories that operate sequentially accumulate them
// (sum). Paper Section III-D.
type StallCombine uint8

// Stall combination modes.
const (
	Concurrent StallCombine = iota // SS_overall takes the max
	Sequential                     // SS_overall takes the sum
)

// String returns "max" or "sum".
func (s StallCombine) String() string {
	if s == Sequential {
		return "sum"
	}
	return "max"
}

// Arch is a complete accelerator description.
type Arch struct {
	Name string

	// MACs is the total number of multiply-accumulate units in the array.
	MACs int64

	// ArrayRows and ArrayCols describe the physical array shape (purely
	// informational; the model uses MACs).
	ArrayRows, ArrayCols int

	// Memories lists all physical memory modules.
	Memories []*Memory

	// Chain gives, per operand, the module names of that operand's
	// hierarchy from innermost (registers, index 0) to outermost (DRAM or
	// global buffer). All names must exist in Memories and serve the
	// operand. Chains of different operands may have different lengths
	// and may share modules.
	Chain [loops.NumOperands][]string

	// Combine selects the Step-3 cross-memory stall integration mode.
	Combine StallCombine

	// chains memoizes ChainMems: the mapper's guided producer resolves the
	// chains for every walked candidate, and the per-call slice allocation
	// plus MemoryByName scans dominated its allocation profile. Resolved
	// once, on first use — Chain must not be edited afterwards (no caller
	// does; every Arch is fully built before the first search touches it).
	chainOnce sync.Once
	chains    [loops.NumOperands][]*Memory
}

// MemoryByName returns the named module or nil.
func (a *Arch) MemoryByName(name string) *Memory {
	for _, m := range a.Memories {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// ChainMems resolves operand op's chain into module pointers. The result is
// memoized on first use and shared between callers: treat it as read-only,
// and do not edit Chain after the first call.
func (a *Arch) ChainMems(op loops.Operand) []*Memory {
	a.chainOnce.Do(func() {
		for _, o := range loops.AllOperands {
			names := a.Chain[o]
			out := make([]*Memory, len(names))
			for i, n := range names {
				out[i] = a.MemoryByName(n)
			}
			a.chains[o] = out
		}
	})
	return a.chains[op]
}

// Levels returns the number of memory levels in operand op's chain.
func (a *Arch) Levels(op loops.Operand) int { return len(a.Chain[op]) }

// Normalize applies default port assignments on every module.
func (a *Arch) Normalize() error {
	for _, m := range a.Memories {
		if err := m.Normalize(); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks global consistency. Call after Normalize.
func (a *Arch) Validate() error {
	if a.MACs <= 0 {
		return fmt.Errorf("arch %q: non-positive MAC count %d", a.Name, a.MACs)
	}
	names := map[string]bool{}
	for _, m := range a.Memories {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("arch %q: %w", a.Name, err)
		}
		if names[m.Name] {
			return fmt.Errorf("arch %q: duplicate memory name %q", a.Name, m.Name)
		}
		names[m.Name] = true
	}
	for _, op := range loops.AllOperands {
		chain := a.Chain[op]
		if len(chain) == 0 {
			return fmt.Errorf("arch %q: operand %s has an empty memory chain", a.Name, op)
		}
		for _, n := range chain {
			m := a.MemoryByName(n)
			if m == nil {
				return fmt.Errorf("arch %q: operand %s chain references unknown memory %q", a.Name, op, n)
			}
			if !m.ServesOperand(op) {
				return fmt.Errorf("arch %q: memory %q in %s's chain does not serve %s", a.Name, n, op, op)
			}
		}
		seen := map[string]bool{}
		for _, n := range chain {
			if seen[n] {
				return fmt.Errorf("arch %q: operand %s chain repeats memory %q", a.Name, op, n)
			}
			seen[n] = true
		}
	}
	return nil
}

// Clone returns a deep copy of the architecture.
func (a *Arch) Clone() *Arch {
	out := &Arch{
		Name:      a.Name,
		MACs:      a.MACs,
		ArrayRows: a.ArrayRows,
		ArrayCols: a.ArrayCols,
		Combine:   a.Combine,
	}
	for _, m := range a.Memories {
		cm := &Memory{
			Name:           m.Name,
			CapacityBits:   m.CapacityBits,
			DoubleBuffered: m.DoubleBuffered,
			Serves:         append([]loops.Operand(nil), m.Serves...),
			Ports:          append([]Port(nil), m.Ports...),
			PortOf:         make(map[Access]int, len(m.PortOf)),
		}
		for k, v := range m.PortOf {
			cm.PortOf[k] = v
		}
		out.Memories = append(out.Memories, cm)
	}
	for op := range a.Chain {
		out.Chain[op] = append([]string(nil), a.Chain[op]...)
	}
	return out
}
