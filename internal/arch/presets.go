package arch

import "repro/internal/loops"

// Byte-size helpers.
const (
	kib = 1024 * 8        // bits in one KiB
	mib = 1024 * 1024 * 8 // bits in one MiB
)

// InHouse returns the validation accelerator of paper Section IV / Fig. 5(a):
// a systolic-array design with 1K MAC units arranged as a 16x32 PE array
// (2 MACs per PE), one 24b output register per PE, an 8b weight and an 8b
// input register per MAC, a 32KB weight local buffer with a 256b bus, a 64KB
// input local buffer with a 512b bus, and a 1MB global buffer. Outputs move
// directly between the output registers and the global buffer.
//
// The register files are single-buffered; the local buffers are
// double-buffered. The global buffer exposes separate read and write ports.
// Register capacities are expressed as distinct-data footprint (broadcast
// copies across the array are not distinct data) and hold four spatial
// tiles of the canonical unrolling K 32 | B 16 | C 2, giving the mapper the
// small temporal tile that lets one operand stay stationary — the systolic
// pipeline registers of the real design play this role.
func InHouse() *Arch {
	a := &Arch{
		Name:      "inhouse-16x32x2",
		MACs:      1024,
		ArrayRows: 16,
		ArrayCols: 64, // 32 PE columns x 2 MACs
		Combine:   Concurrent,
		Memories: []*Memory{
			{
				Name:         "W-Reg",
				CapacityBits: 4 * 64 * 8, // 4 temporal tiles of K32 x C2 distinct 8b weights
				Serves:       []loops.Operand{loops.W},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 256}},
			},
			{
				Name:         "I-Reg",
				CapacityBits: 4 * 32 * 8, // 4 temporal tiles of B16 x C2 distinct 8b inputs
				Serves:       []loops.Operand{loops.I},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 512}},
			},
			{
				Name:         "O-Reg",
				CapacityBits: 4 * 512 * 24, // 4 output contexts per PE (K32 x B16)
				Serves:       []loops.Operand{loops.O},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 512}},
			},
			{
				Name:           "W-LB",
				CapacityBits:   32 * kib,
				DoubleBuffered: true,
				Serves:         []loops.Operand{loops.W},
				Ports: []Port{
					{Name: "rd", Dir: Read, BWBits: 256},
					{Name: "wr", Dir: Write, BWBits: 256},
				},
			},
			{
				Name:           "I-LB",
				CapacityBits:   64 * kib,
				DoubleBuffered: true,
				Serves:         []loops.Operand{loops.I},
				Ports: []Port{
					{Name: "rd", Dir: Read, BWBits: 512},
					{Name: "wr", Dir: Write, BWBits: 512},
				},
			},
			{
				Name:         "GB",
				CapacityBits: 1 * mib,
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []Port{
					{Name: "rd", Dir: Read, BWBits: 256},
					{Name: "wr", Dir: Write, BWBits: 256},
				},
			},
		},
	}
	a.Chain[loops.W] = []string{"W-Reg", "W-LB", "GB"}
	a.Chain[loops.I] = []string{"I-Reg", "I-LB", "GB"}
	a.Chain[loops.O] = []string{"O-Reg", "GB"}
	mustFinish(a)
	return a
}

// InHouseSpatial returns the canonical spatial unrolling of the in-house
// accelerator: K 32 | B 16 | C 2 (paper Fig. 5(b), post-Im2Col).
func InHouseSpatial() loops.Nest {
	return loops.Nest{{Dim: loops.K, Size: 32}, {Dim: loops.B, Size: 16}, {Dim: loops.C, Size: 2}}
}

// CaseStudy returns the scaled-down accelerator used by case studies 1 and 2
// (paper Section V): an 8x16 PE array with 2 MACs per PE (256 MACs), a 16KB
// weight local buffer, an 8KB input local buffer and a 1MB global buffer
// with 128 bit/cycle read and write bandwidth. As in the in-house design,
// outputs bypass the local-buffer level.
func CaseStudy() *Arch {
	a := &Arch{
		Name:      "casestudy-8x16x2",
		MACs:      256,
		ArrayRows: 8,
		ArrayCols: 32, // 16 PE columns x 2 MACs
		Combine:   Concurrent,
		Memories: []*Memory{
			{
				Name:         "W-Reg",
				CapacityBits: 4 * 32 * 8, // 4 temporal tiles of K16 x C2
				Serves:       []loops.Operand{loops.W},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 256}},
			},
			{
				Name:         "I-Reg",
				CapacityBits: 4 * 16 * 8, // 4 temporal tiles of B8 x C2
				Serves:       []loops.Operand{loops.I},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 256}},
			},
			{
				Name:         "O-Reg",
				CapacityBits: 4 * 128 * 24, // 4 output contexts per PE (K16 x B8)
				Serves:       []loops.Operand{loops.O},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 3072}},
			},
			{
				Name:           "W-LB",
				CapacityBits:   16 * kib,
				DoubleBuffered: true,
				Serves:         []loops.Operand{loops.W},
				Ports: []Port{
					{Name: "rd", Dir: Read, BWBits: 256},
					{Name: "wr", Dir: Write, BWBits: 128},
				},
			},
			{
				Name:           "I-LB",
				CapacityBits:   8 * kib,
				DoubleBuffered: true,
				Serves:         []loops.Operand{loops.I},
				Ports: []Port{
					{Name: "rd", Dir: Read, BWBits: 256},
					{Name: "wr", Dir: Write, BWBits: 128},
				},
			},
			{
				Name:         "GB",
				CapacityBits: 1 * mib,
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []Port{
					{Name: "rd", Dir: Read, BWBits: 128},
					{Name: "wr", Dir: Write, BWBits: 128},
				},
			},
		},
	}
	a.Chain[loops.W] = []string{"W-Reg", "W-LB", "GB"}
	a.Chain[loops.I] = []string{"I-Reg", "I-LB", "GB"}
	a.Chain[loops.O] = []string{"O-Reg", "GB"}
	mustFinish(a)
	return a
}

// CaseStudySpatial returns the spatial unrolling fixed for case studies 1
// and 2: K 16 | B 8 | C 2 (paper Section V).
func CaseStudySpatial() loops.Nest {
	return loops.Nest{{Dim: loops.K, Size: 16}, {Dim: loops.B, Size: 8}, {Dim: loops.C, Size: 2}}
}

// mustFinish normalizes and validates a preset; presets are code we own, so
// a failure here is a programming error.
func mustFinish(a *Arch) {
	if err := a.Normalize(); err != nil {
		panic("arch: bad preset: " + err.Error())
	}
	if err := a.Validate(); err != nil {
		panic("arch: bad preset: " + err.Error())
	}
}
