package arch

import "repro/internal/loops"

// TPULike returns a TPU-v1-inspired weight-stationary accelerator scaled to
// edge size: a 32x32 systolic MAC array fed by a large UNIFIED buffer that
// holds inputs and outputs behind a single wide read/write port (the
// configuration the paper's Section I calls out as mis-modeled by
// always-double-buffered, always-multi-ported assumptions), a dedicated
// weight FIFO path, and 24b accumulators.
func TPULike() *Arch {
	a := &Arch{
		Name:      "tpulike-32x32",
		MACs:      1024,
		ArrayRows: 32,
		ArrayCols: 32,
		Combine:   Concurrent,
		Memories: []*Memory{
			{
				// Per-MAC weight registers: the stationary operand, double
				// pumped so the next tile loads behind the current one.
				Name:           "W-Reg",
				CapacityBits:   2 * 1024 * 8,
				DoubleBuffered: true,
				Serves:         []loops.Operand{loops.W},
				Ports:          []Port{{Name: "rw", Dir: ReadWrite, BWBits: 512}},
			},
			{
				// Weight FIFO between DDR-side storage and the array.
				Name:           "W-FIFO",
				CapacityBits:   64 * kib,
				DoubleBuffered: true,
				Serves:         []loops.Operand{loops.W},
				Ports: []Port{
					{Name: "rd", Dir: Read, BWBits: 512},
					{Name: "wr", Dir: Write, BWBits: 256},
				},
			},
			{
				// Accumulators for the output columns.
				Name:         "Acc",
				CapacityBits: 4 * 1024 * 24,
				Serves:       []loops.Operand{loops.O},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 768}},
			},
			{
				// The unified buffer: activations in, results out, ONE
				// shared read/write port.
				Name:         "UB",
				CapacityBits: 256 * kib,
				Serves:       []loops.Operand{loops.I, loops.O},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 256}},
			},
			{
				// Off-chip-facing level (DDR through the weight/unified
				// paths).
				Name:         "DDR",
				CapacityBits: 64 * mib,
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []Port{
					{Name: "rd", Dir: Read, BWBits: 128},
					{Name: "wr", Dir: Write, BWBits: 128},
				},
			},
		},
	}
	a.Chain[loops.W] = []string{"W-Reg", "W-FIFO", "DDR"}
	a.Chain[loops.I] = []string{"UB", "DDR"}
	a.Chain[loops.O] = []string{"Acc", "UB", "DDR"}
	mustFinish(a)
	return a
}

// TPULikeSpatial returns the systolic unrolling K 32 | C 32: weights for 32
// output channels x 32 input channels stay resident while activations
// stream through.
func TPULikeSpatial() loops.Nest {
	return loops.Nest{{Dim: loops.K, Size: 32}, {Dim: loops.C, Size: 32}}
}
