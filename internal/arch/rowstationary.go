package arch

import "repro/internal/loops"

// RowStationary returns an Eyeriss-style row-stationary accelerator: a
// 12x14 PE grid (168 MACs) that runs convolutions DIRECTLY (no Im2Col),
// spatially unrolling filter rows (FY) across PE rows, output rows (OY)
// across PE diagonals and output channels (K) across groups. Each PE owns
// scratchpads for a filter row, an input row segment and partial sums; all
// PEs share a global buffer.
//
// This preset exists to exercise the model's generality (paper Section I:
// "diverse architectures and dataflows"): a completely different dataflow
// and a 7-dimensional direct-convolution mapping, including the input
// operand's sliding-window (partially relevant) dimensions.
func RowStationary() *Arch {
	a := &Arch{
		Name:      "rowstationary-12x14",
		MACs:      168,
		ArrayRows: 12,
		ArrayCols: 14,
		Combine:   Concurrent,
		Memories: []*Memory{
			{
				// Per-PE weight scratchpad: a few filter rows.
				Name:         "W-Spad",
				CapacityBits: 4 * 672 * 8, // 4 tiles of FY3 x K4 x (FX up to 14) x C4
				Serves:       []loops.Operand{loops.W},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 256}},
			},
			{
				// Per-PE input scratchpad: input row segments (sized for
				// the sliding-window halo of the spatial OY x FY tile).
				Name:         "I-Spad",
				CapacityBits: 4 * 2048 * 8,
				Serves:       []loops.Operand{loops.I},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 256}},
			},
			{
				// Per-PE psum scratchpad.
				Name:         "O-Spad",
				CapacityBits: 4 * 1024 * 24,
				Serves:       []loops.Operand{loops.O},
				Ports:        []Port{{Name: "rw", Dir: ReadWrite, BWBits: 1344}},
			},
			{
				Name:         "GB",
				CapacityBits: 108 * kib, // Eyeriss-class 108KB GB
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []Port{
					{Name: "rd", Dir: Read, BWBits: 128},
					{Name: "wr", Dir: Write, BWBits: 128},
				},
			},
		},
	}
	a.Chain[loops.W] = []string{"W-Spad", "GB"}
	a.Chain[loops.I] = []string{"I-Spad", "GB"}
	a.Chain[loops.O] = []string{"O-Spad", "GB"}
	mustFinish(a)
	return a
}

// RowStationarySpatial returns the canonical row-stationary unrolling:
// FY 3 | OY 14 | K 4 (168 MACs).
func RowStationarySpatial() loops.Nest {
	return loops.Nest{
		{Dim: loops.FY, Size: 3},
		{Dim: loops.OY, Size: 14},
		{Dim: loops.K, Size: 4},
	}
}
