package noc

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

func problem() *core.Problem {
	l := workload.NewMatMul("n", 16, 32, 8)
	a := arch.CaseStudy()
	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(), // K16 | B8 | C2
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 1, 3}
	m.Bound[loops.I] = []int{0, 2, 3}
	m.Bound[loops.O] = []int{1, 3}
	return &core.Problem{Layer: &l, Arch: a, Mapping: m}
}

func TestAnalyzeFanouts(t *testing.T) {
	r, err := Analyze(problem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Operands) != 3 {
		t.Fatalf("operands = %d", len(r.Operands))
	}
	// Spatial K16|B8|C2: W broadcast across B8 (ir), I across K16, O
	// across C2.
	want := map[loops.Operand]int64{loops.W: 8, loops.I: 16, loops.O: 2}
	for _, ot := range r.Operands {
		if ot.Fanout != want[ot.Operand] {
			t.Errorf("%s fanout = %d, want %d", ot.Operand, ot.Fanout, want[ot.Operand])
		}
		if ot.TotalPJ <= 0 || ot.BitsPerCycle <= 0 {
			t.Errorf("%s degenerate traffic: %+v", ot.Operand, ot)
		}
	}
	if !r.BroadcastFriendly() {
		t.Error("broadcast-friendly mapping not recognized")
	}
	if r.TotalPJ <= 0 {
		t.Error("no total energy")
	}
}

func TestDeliveryRates(t *testing.T) {
	r, err := Analyze(problem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ot := range r.Operands {
		switch ot.Operand {
		case loops.W:
			// W at reg: MemData 32 (K16*C2), MemCC 1 -> 32 elems/cc.
			if ot.ElemsPerCycle != 32 {
				t.Errorf("W rate = %v", ot.ElemsPerCycle)
			}
		case loops.I:
			// I at reg: MemData 16, MemCC 1.
			if ot.ElemsPerCycle != 16 {
				t.Errorf("I rate = %v", ot.ElemsPerCycle)
			}
		case loops.O:
			// O at reg: MemData 128, MemCC 4 -> 32 elems/cc.
			if ot.ElemsPerCycle != 32 {
				t.Errorf("O rate = %v", ot.ElemsPerCycle)
			}
		}
	}
}

func TestHopsScaleWithArray(t *testing.T) {
	small, err := Analyze(problem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := problem()
	p.Arch.MACs = 4096
	big, err := Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if big.Operands[0].AvgHops <= small.Operands[0].AvgHops {
		t.Error("hop count does not grow with the array")
	}
	if big.TotalPJ <= small.TotalPJ {
		t.Error("NoC energy does not grow with the array")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, nil); err == nil {
		t.Error("nil problem analyzed")
	}
	if _, err := Analyze(&core.Problem{}, nil); err == nil {
		t.Error("empty problem analyzed")
	}
}
