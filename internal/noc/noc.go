// Package noc models the on-chip network that distributes operands from
// the innermost memory level across the MAC array — the data-transfer
// component the paper lists among the operations a system energy model
// must count (Section I). For each operand the spatial unrolling fixes the
// delivery pattern: the operand is BROADCAST across its irrelevant spatial
// dimensions (one datum feeds many MACs) and UNICAST across its relevant
// ones, so the wire traffic and energy follow directly from the mapping.
package noc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/loops"
)

// Model holds the interconnect cost parameters.
type Model struct {
	// HopPJPerBit is the energy of moving one bit across one PE hop.
	HopPJPerBit float64
	// LeafPJPerBit is the fixed per-bit injection/ejection cost.
	LeafPJPerBit float64
}

// Default7nm returns wire-energy constants in scale with the energy
// package's memory costs.
func Default7nm() *Model {
	return &Model{HopPJPerBit: 0.0016, LeafPJPerBit: 0.004}
}

// OperandTraffic is the per-operand NoC analysis.
type OperandTraffic struct {
	Operand loops.Operand
	// Fanout is the broadcast amplification: how many MACs one datum
	// feeds (the product of the operand's irrelevant spatial dims).
	Fanout int64
	// ElemsPerCycle is the steady-state distinct-element delivery rate
	// from the innermost memory into the array.
	ElemsPerCycle float64
	// BitsPerCycle is the corresponding wire payload.
	BitsPerCycle float64
	// AvgHops is the mean delivery distance on a sqrt(MACs) mesh.
	AvgHops float64
	// TotalPJ is the layer's total NoC energy for this operand.
	TotalPJ float64
}

// Report is a whole-problem NoC analysis.
type Report struct {
	Operands []OperandTraffic
	TotalPJ  float64
}

// Analyze computes the NoC traffic and energy of one problem.
func Analyze(p *core.Problem, m *Model) (*Report, error) {
	if p == nil || p.Layer == nil || p.Arch == nil || p.Mapping == nil {
		return nil, fmt.Errorf("noc: nil problem component")
	}
	if m == nil {
		m = Default7nm()
	}
	side := math.Sqrt(float64(p.Arch.MACs))
	avgHops := side / 2 // mean Manhattan distance from an edge injector
	if avgHops < 1 {
		avgHops = 1
	}
	totalCC := float64(p.Mapping.CCSpatial())
	if totalCC <= 0 {
		return nil, fmt.Errorf("noc: empty temporal mapping")
	}

	rep := &Report{}
	sp := p.Mapping.Spatial.DimProduct()
	for _, op := range loops.AllOperands {
		fanout := int64(1)
		for _, d := range loops.AllDims {
			if sp[d] > 1 && loops.IsReuseDim(op, d) {
				fanout *= sp[d]
			}
		}
		// Distinct elements delivered per turnaround of the innermost
		// level: Mem_DATA every Mem_CC cycles. Outputs also travel back
		// up once per turnaround (drain), doubling their wire payload.
		memData := float64(p.Mapping.MemData(op, 0, p.Layer.Strides))
		memCC := float64(p.Mapping.MemCC(op, 0))
		rate := memData / memCC
		bits := rate * float64(p.Layer.Precision.Bits(op))
		dirFactor := 1.0
		if op == loops.O {
			dirFactor = 2.0 // accumulate in + drain out
		}
		energy := bits * dirFactor * totalCC * (m.LeafPJPerBit + m.HopPJPerBit*avgHops)
		ot := OperandTraffic{
			Operand:       op,
			Fanout:        fanout,
			ElemsPerCycle: rate,
			BitsPerCycle:  bits,
			AvgHops:       avgHops,
			TotalPJ:       energy,
		}
		rep.Operands = append(rep.Operands, ot)
		rep.TotalPJ += energy
	}
	sort.Slice(rep.Operands, func(i, j int) bool { return rep.Operands[i].Operand < rep.Operands[j].Operand })
	return rep, nil
}

// BroadcastFriendly reports whether the mapping exploits broadcast for at
// least one operand (fanout > 1) — a multicast-capable NoC pays off; a
// pure unicast mesh would replicate that traffic.
func (r *Report) BroadcastFriendly() bool {
	for _, ot := range r.Operands {
		if ot.Fanout > 1 {
			return true
		}
	}
	return false
}
