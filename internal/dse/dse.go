// Package dse implements the Case-3 architecture design-space exploration
// (paper Fig. 8): it generates accelerator variants from a memory pool —
// register and local-buffer capacity candidates around three MAC array
// sizes — evaluates each point's best mapping with the latency model
// (bandwidth-aware or -unaware), prices its area, and extracts the
// latency/area Pareto front.
package dse

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/area"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/par"
	"repro/internal/workload"
)

// ArrayChoice is one MAC-array size with its scaled spatial unrolling
// (paper Section V-C: 16x16 = K16|B8|C2, 32x32 = K32|B16|C2,
// 64x64 = K64|B32|C2).
type ArrayChoice struct {
	Name    string
	MACs    int64
	Spatial loops.Nest
}

// PaperArrays returns the three array sizes of Fig. 8.
func PaperArrays() []ArrayChoice {
	mk := func(name string, k, b, c int64) ArrayChoice {
		return ArrayChoice{
			Name: name,
			MACs: k * b * c,
			Spatial: loops.Nest{
				{Dim: loops.K, Size: k},
				{Dim: loops.B, Size: b},
				{Dim: loops.C, Size: c},
			},
		}
	}
	return []ArrayChoice{
		mk("16x16", 16, 8, 2),
		mk("32x32", 32, 16, 2),
		mk("64x64", 64, 32, 2),
	}
}

// Config parametrizes a sweep.
type Config struct {
	Arrays []ArrayChoice
	// RegMults are register capacities in multiples of the spatial tile.
	RegMults []int64
	// WLBKiB / ILBKiB are local-buffer capacity candidates.
	WLBKiB []int64
	ILBKiB []int64
	// GBBWBits is the global-buffer port bandwidth (bits/cycle) of this
	// sweep (Fig. 8 contrasts 128 vs 1024).
	GBBWBits int64
	// BWAware false reproduces the Fig. 8(a) baseline.
	BWAware bool
	// Layer is the workload each point is optimized for.
	Layer workload.Layer
	// MaxCandidates bounds the per-point mapping search.
	MaxCandidates int
	// NoReduce disables the symmetry-reduced enumeration in the per-point
	// searches; results are identical, only search time changes.
	NoReduce bool
	// NoSurrogate disables the surrogate-guided candidate ordering in the
	// per-point searches; results are identical, only search time changes.
	NoSurrogate bool
	// Workers bounds parallelism: 0 draws from the shared process-wide
	// worker budget (package par), n >= 1 forces exactly n workers.
	Workers int
}

// DefaultConfig returns a pool comparable in spirit to the paper's
// "tens of register/memory candidates": 3 arrays x 3 reg sizes x 4 W-LB x
// 4 I-LB = 432 designs per GB bandwidth.
func DefaultConfig(gbBW int64, bwAware bool) *Config {
	return &Config{
		Arrays:   PaperArrays(),
		RegMults: []int64{2, 4, 8},
		WLBKiB:   []int64{8, 16, 32, 64},
		ILBKiB:   []int64{4, 8, 16, 32},
		GBBWBits: gbBW,
		BWAware:  bwAware,
		// The sweep workload: output-heavy (small C) so the GB write path
		// matters, with K=96 so the 64x64 array pads its K dimension to
		// 128 — the realistic awkward-fit case where bandwidth awareness
		// changes the array-size verdict (paper Fig. 8(b) vs (c)).
		Layer:         workload.NewMatMul("dse", 192, 96, 64),
		MaxCandidates: 400,
	}
}

// Point is one evaluated design.
type Point struct {
	Arch    *arch.Arch
	Array   string
	Spatial loops.Nest
	Latency float64
	Areamm2 float64 // GB excluded, as in the paper
	Mapping string  // best mapping's temporal nest, for reports
	Valid   bool
}

// BuildArch constructs one design point's architecture. Register and local
// buffer port bandwidths scale with the array size (wires widen with the
// array); the GB bandwidth is the swept parameter.
func BuildArch(ac ArrayChoice, regMult, wlbKiB, ilbKiB, gbBW int64) *arch.Arch {
	sp := ac.Spatial.DimProduct()
	wTile := sp[loops.K] * sp[loops.C] // distinct weights per cycle
	iTile := sp[loops.B] * sp[loops.C] // distinct inputs per cycle
	oTile := sp[loops.K] * sp[loops.B] // distinct outputs held
	const kib = 1024 * 8
	a := &arch.Arch{
		Name:    fmt.Sprintf("%s-r%d-w%d-i%d-gb%d", ac.Name, regMult, wlbKiB, ilbKiB, gbBW),
		MACs:    ac.MACs,
		Combine: arch.Concurrent,
		Memories: []*arch.Memory{
			{
				Name:         "W-Reg",
				CapacityBits: regMult * wTile * 8,
				Serves:       []loops.Operand{loops.W},
				Ports:        []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: wTile * 4}},
			},
			{
				Name:         "I-Reg",
				CapacityBits: regMult * iTile * 8,
				Serves:       []loops.Operand{loops.I},
				Ports:        []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: iTile * 16}},
			},
			{
				Name:         "O-Reg",
				CapacityBits: regMult * oTile * 24,
				Serves:       []loops.Operand{loops.O},
				Ports:        []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: oTile * 24}},
			},
			{
				Name:           "W-LB",
				CapacityBits:   wlbKiB * kib,
				DoubleBuffered: true,
				Serves:         []loops.Operand{loops.W},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: wTile * 4},
					{Name: "wr", Dir: arch.Write, BWBits: wTile * 4},
				},
			},
			{
				Name:           "I-LB",
				CapacityBits:   ilbKiB * kib,
				DoubleBuffered: true,
				Serves:         []loops.Operand{loops.I},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: iTile * 16},
					{Name: "wr", Dir: arch.Write, BWBits: iTile * 8},
				},
			},
			{
				Name:         "GB",
				CapacityBits: 1024 * kib,
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: gbBW},
					{Name: "wr", Dir: arch.Write, BWBits: gbBW},
				},
			},
		},
	}
	a.Chain[loops.W] = []string{"W-Reg", "W-LB", "GB"}
	a.Chain[loops.I] = []string{"I-Reg", "I-LB", "GB"}
	a.Chain[loops.O] = []string{"O-Reg", "GB"}
	if err := a.Normalize(); err != nil {
		panic("dse: bad generated arch: " + err.Error())
	}
	if err := a.Validate(); err != nil {
		panic("dse: bad generated arch: " + err.Error())
	}
	return a
}

// Sweep evaluates every design in the config's pool. Points whose mapping
// search fails are returned with Valid=false. Cancellation propagates into
// every per-point mapping search; a canceled sweep returns ctx.Err() and no
// points.
func Sweep(ctx context.Context, cfg *Config) ([]Point, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(cfg.Arrays) == 0 {
		return nil, fmt.Errorf("dse: no array choices")
	}
	type task struct {
		idx int
		ac  ArrayChoice
		rm  int64
		wlb int64
		ilb int64
	}
	var tasks []task
	for _, ac := range cfg.Arrays {
		for _, rm := range cfg.RegMults {
			for _, w := range cfg.WLBKiB {
				for _, i := range cfg.ILBKiB {
					tasks = append(tasks, task{len(tasks), ac, rm, w, i})
				}
			}
		}
	}
	points := make([]Point, len(tasks))
	am := area.Default7nm()

	// Sweep points share the process-wide worker budget with the mapping
	// searches they invoke: when the sweep saturates the budget, the inner
	// searches run serially, and vice versa — never oversubscribed.
	par.ForEachLimit(len(tasks), cfg.Workers, func(i int) {
		if ctx.Err() != nil {
			return // canceled: skip the remaining points promptly
		}
		tk := tasks[i]
		a := BuildArch(tk.ac, tk.rm, tk.wlb, tk.ilb, cfg.GBBWBits)
		pt := Point{
			Arch:    a,
			Array:   tk.ac.Name,
			Spatial: tk.ac.Spatial,
			Areamm2: am.Arch(a, "GB"),
		}
		layer := cfg.Layer
		// Cached search: sweep grids re-visit (arch, layer) points across
		// panels and CLI invocations; the fingerprint is content-addressed,
		// so each freshly built (but structurally identical) Arch hits.
		best, _, err := mapper.BestCached(ctx, &layer, a, &mapper.Options{
			Spatial:       tk.ac.Spatial,
			BWAware:       cfg.BWAware,
			Pow2Splits:    true,
			MaxCandidates: cfg.MaxCandidates,
			NoReduce:      cfg.NoReduce,
			NoSurrogate:   cfg.NoSurrogate,
		})
		if err == nil {
			pt.Latency = best.Result.CCTotal
			pt.Mapping = best.Mapping.Temporal.String()
			pt.Valid = true
		}
		points[tk.idx] = pt
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return points, nil
}

// Pareto returns the latency/area Pareto-optimal subset of the valid
// points, sorted by area.
func Pareto(points []Point) []Point {
	var valid []Point
	for _, p := range points {
		if p.Valid {
			valid = append(valid, p)
		}
	}
	sort.Slice(valid, func(i, j int) bool {
		if valid[i].Areamm2 != valid[j].Areamm2 {
			return valid[i].Areamm2 < valid[j].Areamm2
		}
		return valid[i].Latency < valid[j].Latency
	})
	var front []Point
	bestLat := 0.0
	for _, p := range valid {
		if len(front) == 0 || p.Latency < bestLat {
			front = append(front, p)
			bestLat = p.Latency
		}
	}
	return front
}

// BestPerArray returns, per array size, the lowest-latency valid point.
func BestPerArray(points []Point) map[string]Point {
	out := map[string]Point{}
	for _, p := range points {
		if !p.Valid {
			continue
		}
		cur, ok := out[p.Array]
		if !ok || p.Latency < cur.Latency {
			out[p.Array] = p
		}
	}
	return out
}
