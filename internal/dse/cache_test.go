package dse

import (
	"context"
	"testing"

	"repro/internal/memo"
)

// smallConfig is a fast sweep slice for the equivalence test.
func smallConfig(bwAware bool) *Config {
	cfg := DefaultConfig(128, bwAware)
	cfg.Arrays = cfg.Arrays[:2]
	cfg.RegMults = []int64{2, 4}
	cfg.WLBKiB = []int64{16}
	cfg.ILBKiB = []int64{8}
	cfg.MaxCandidates = 150
	return cfg
}

// TestSweepCachedMatchesUncached: sweep results through the memo cache are
// exactly equal to an uncached sweep, and a repeated sweep (fresh Arch
// values, same content) is served from memory.
func TestSweepCachedMatchesUncached(t *testing.T) {
	memo.Default.Reset()
	cfg := smallConfig(true)

	cached, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h0 := memo.Default.Counters().Hits()
	repeat, err := Sweep(context.Background(), cfg) // rebuilds every Arch; content-keyed -> all hits
	if err != nil {
		t.Fatal(err)
	}
	if memo.Default.Counters().Hits()-h0 < int64(len(repeat)) {
		t.Fatalf("repeat sweep hit %d times, want >= %d",
			memo.Default.Counters().Hits()-h0, len(repeat))
	}

	memo.Default.SetEnabled(false)
	defer memo.Default.SetEnabled(true)
	plain, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(cached) != len(plain) || len(repeat) != len(plain) {
		t.Fatalf("point counts differ: %d / %d / %d", len(cached), len(repeat), len(plain))
	}
	for i := range plain {
		for name, pts := range map[string][]Point{"cached": cached, "repeat": repeat} {
			c, p := pts[i], plain[i]
			if c.Valid != p.Valid || c.Latency != p.Latency || c.Areamm2 != p.Areamm2 || c.Mapping != p.Mapping {
				t.Fatalf("%s point %d (%s): latency %v != %v, mapping %q != %q",
					name, i, p.Arch.Name, c.Latency, p.Latency, c.Mapping, p.Mapping)
			}
		}
	}
}
