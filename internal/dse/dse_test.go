package dse

import (
	"context"
	"testing"

	"repro/internal/loops"
	"repro/internal/workload"
)

func quickConfig(gbBW int64, aware bool) *Config {
	cfg := DefaultConfig(gbBW, aware)
	cfg.Arrays = cfg.Arrays[:2] // 16x16 and 32x32
	cfg.RegMults = []int64{4}
	cfg.WLBKiB = []int64{16, 32}
	cfg.ILBKiB = []int64{8}
	cfg.Layer = workload.NewMatMul("t", 64, 64, 64)
	cfg.MaxCandidates = 150
	return cfg
}

func TestPaperArrays(t *testing.T) {
	arrays := PaperArrays()
	if len(arrays) != 3 {
		t.Fatalf("arrays = %d", len(arrays))
	}
	wantMACs := []int64{256, 1024, 4096}
	for i, a := range arrays {
		if a.MACs != wantMACs[i] {
			t.Errorf("%s MACs = %d, want %d", a.Name, a.MACs, wantMACs[i])
		}
		if a.Spatial.Product() != a.MACs {
			t.Errorf("%s spatial product %d != MACs", a.Name, a.Spatial.Product())
		}
	}
}

func TestBuildArchValid(t *testing.T) {
	for _, ac := range PaperArrays() {
		a := BuildArch(ac, 4, 16, 8, 128)
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if a.MemoryByName("GB").Ports[0].BWBits != 128 {
			t.Errorf("%s GB BW wrong", a.Name)
		}
		// Register capacity scales with the array.
		sp := ac.Spatial.DimProduct()
		if a.MemoryByName("W-Reg").CapacityBits != 4*sp[loops.K]*sp[loops.C]*8 {
			t.Errorf("%s W-Reg capacity wrong", a.Name)
		}
	}
}

func TestSweepShape(t *testing.T) {
	pts, err := Sweep(context.Background(), quickConfig(128, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*1*2*1 {
		t.Fatalf("points = %d", len(pts))
	}
	validCount := 0
	for _, p := range pts {
		if p.Areamm2 <= 0 {
			t.Error("non-positive area")
		}
		if p.Valid {
			validCount++
			if p.Latency <= 0 {
				t.Error("valid point with non-positive latency")
			}
		}
	}
	if validCount == 0 {
		t.Fatal("no valid points")
	}
}

func TestSweepDeterministic(t *testing.T) {
	a, err := Sweep(context.Background(), quickConfig(128, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), quickConfig(128, true))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Latency != b[i].Latency || a[i].Arch.Name != b[i].Arch.Name {
			t.Fatalf("sweep not deterministic at %d", i)
		}
	}
}

func TestParetoAndBestPerArray(t *testing.T) {
	pts := []Point{
		{Array: "a", Latency: 100, Areamm2: 1, Valid: true},
		{Array: "a", Latency: 90, Areamm2: 2, Valid: true},
		{Array: "b", Latency: 95, Areamm2: 1.5, Valid: true},
		{Array: "b", Latency: 80, Areamm2: 3, Valid: true},
		{Array: "b", Latency: 999, Areamm2: 0.1, Valid: false}, // ignored
		{Array: "a", Latency: 120, Areamm2: 2.5, Valid: true},  // dominated
	}
	front := Pareto(pts)
	if len(front) != 4 {
		t.Fatalf("front = %v", front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Latency >= front[i-1].Latency {
			t.Error("front latencies not decreasing")
		}
	}
	best := BestPerArray(pts)
	if best["a"].Latency != 90 || best["b"].Latency != 80 {
		t.Errorf("best per array wrong: %+v", best)
	}
}

func TestSweepEmptyConfig(t *testing.T) {
	if _, err := Sweep(context.Background(), &Config{}); err == nil {
		t.Error("empty config swept")
	}
}

func TestBWAwareNeverFaster(t *testing.T) {
	aware, err := Sweep(context.Background(), quickConfig(128, true))
	if err != nil {
		t.Fatal(err)
	}
	unaware, err := Sweep(context.Background(), quickConfig(128, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range aware {
		if !aware[i].Valid || !unaware[i].Valid {
			continue
		}
		if aware[i].Latency < unaware[i].Latency-1e-9 {
			t.Errorf("point %d: aware %.0f < unaware %.0f", i, aware[i].Latency, unaware[i].Latency)
		}
	}
}

func TestGBBandwidthMonotone(t *testing.T) {
	low, err := Sweep(context.Background(), quickConfig(128, true))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Sweep(context.Background(), quickConfig(1024, true))
	if err != nil {
		t.Fatal(err)
	}
	for i := range low {
		if !low[i].Valid || !high[i].Valid {
			continue
		}
		if high[i].Latency > low[i].Latency+1e-9 {
			t.Errorf("point %d: 1024b GB slower (%.0f) than 128b (%.0f)", i, high[i].Latency, low[i].Latency)
		}
	}
}
