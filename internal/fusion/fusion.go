// Package fusion decides which adjacent layer pairs of a network to fuse:
// a fused boundary streams tile-by-tile from producer to consumer, so the
// global buffer holds only a double-buffered tile of the intermediate
// activation instead of the whole tensor. Fusion is the classic remedy for
// activation spills; this package chooses fusions greedily with the buffer
// planner of package alloc in the loop — each fusion shrinks the planned
// footprint, and the measured benefit is the off-chip spill traffic it
// eliminates.
package fusion

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/network"
	"repro/internal/workload"
)

// Options tunes the optimizer.
type Options struct {
	// MaxCandidates is the per-layer mapping search budget (default 3000).
	MaxCandidates int
	// SpillBWBits prices off-chip traffic (default GB port /4 as in
	// package network).
	SpillBWBits int64
	// MaxFusions bounds the fused boundaries (0 = unlimited).
	MaxFusions int
}

// Result is the fusion verdict for one network on one architecture.
type Result struct {
	// Fused[i] reports whether the boundary after layer i is fused.
	Fused []bool
	// UnfusedPlan / FusedPlan are the buffer plans before and after.
	UnfusedPlan *alloc.Plan
	FusedPlan   *alloc.Plan
	// UnfusedCC / FusedCC are the network latencies (layer compute plus
	// spill round trips) before and after fusion.
	UnfusedCC float64
	FusedCC   float64
	// SavedCC = UnfusedCC - FusedCC.
	SavedCC float64
	// TileBits[i] is the live tile buffer a fused boundary i keeps.
	TileBits []int64
}

// layerInfo caches per-layer evaluation results.
type layerInfo struct {
	name     string
	cc       float64
	wBits    int64
	outBits  int64
	tileBits int64 // double-buffered producer output tile
}

// Optimize evaluates the network, then fuses spilled boundaries greedily
// (largest spill first) until the plan is spill-free, the fusion budget is
// exhausted, or no fusion helps.
func Optimize(n *network.Network, hw *arch.Arch, spatial loops.Nest, opt *Options) (*Result, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if opt == nil {
		opt = &Options{}
	}
	budget := opt.MaxCandidates
	if budget <= 0 {
		budget = 3000
	}
	gb := hw.MemoryByName(hw.Chain[loops.W][len(hw.Chain[loops.W])-1])
	if gb == nil {
		return nil, fmt.Errorf("fusion: no outermost memory")
	}
	spillBW := opt.SpillBWBits
	if spillBW <= 0 {
		spillBW = gb.Ports[len(gb.Ports)-1].BWBits / 4
		if spillBW <= 0 {
			spillBW = 32
		}
	}

	// Per-layer evaluation.
	infos := make([]layerInfo, len(n.Layers))
	for i := range n.Layers {
		lowered := workload.Im2Col(n.Layers[i])
		best, _, err := mapper.Best(context.Background(), &lowered, hw, &mapper.Options{
			Spatial: spatial, BWAware: true, MaxCandidates: budget,
		})
		if err != nil {
			return nil, fmt.Errorf("fusion: layer %s: %w", n.Layers[i].Name, err)
		}
		infos[i] = layerInfo{
			name:    n.Layers[i].Name,
			cc:      best.Result.CCTotal,
			wBits:   lowered.OperandBits(loops.W),
			outBits: lowered.OperandBits(loops.O),
			// The producer drains output tiles of its innermost level;
			// a fused boundary ping-pongs two of them.
			tileBits: 2 * best.Mapping.MemData(loops.O, 0, lowered.Strides) *
				int64(lowered.Precision.Bits(loops.O)),
		}
	}

	fused := make([]bool, len(infos))
	plan := func() (*alloc.Plan, map[int]int64, error) {
		var tensors []alloc.Tensor
		actIdx := map[int]int{}
		for i, li := range infos {
			tensors = append(tensors, alloc.Tensor{
				Name: "w[" + li.name + "]", Bits: li.wBits, FirstUse: i, LastUse: i,
			})
			bits := li.outBits
			if i < len(fused) && fused[i] {
				bits = li.tileBits
			}
			last := i
			if i+1 < len(infos) {
				last = i + 1
			}
			actIdx[i] = len(tensors)
			tensors = append(tensors, alloc.Tensor{
				Name: "act[" + li.name + "]", Bits: bits, FirstUse: i, LastUse: last,
			})
		}
		p, err := alloc.Build(tensors, gb.CapacityBits)
		if err != nil {
			return nil, nil, err
		}
		spills := map[int]int64{}
		for i, ti := range actIdx {
			if p.Placements[ti].Spill && i+1 < len(infos) {
				spills[i] = p.Placements[ti].Tensor.Bits
			}
		}
		return p, spills, nil
	}

	cost := func(spills map[int]int64) float64 {
		total := 0.0
		for i := range infos {
			total += infos[i].cc
		}
		for _, bits := range spills {
			total += float64(loops.CeilDiv(2*bits, spillBW))
		}
		return total
	}

	basePlan, baseSpills, err := plan()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Fused:       fused,
		UnfusedPlan: basePlan,
		UnfusedCC:   cost(baseSpills),
		TileBits:    make([]int64, len(infos)),
	}
	for i, li := range infos {
		res.TileBits[i] = li.tileBits
	}

	curPlan, curSpills := basePlan, baseSpills
	curCC := res.UnfusedCC
	fusions := 0
	for {
		// Pick the largest spilled, not-yet-fused boundary.
		bestIdx, bestBits := -1, int64(0)
		for i, bits := range curSpills {
			if !fused[i] && bits > bestBits {
				bestIdx, bestBits = i, bits
			}
		}
		if bestIdx < 0 || (opt.MaxFusions > 0 && fusions >= opt.MaxFusions) {
			break
		}
		fused[bestIdx] = true
		p2, s2, err := plan()
		if err != nil {
			return nil, err
		}
		cc2 := cost(s2)
		if cc2 >= curCC {
			fused[bestIdx] = false // no benefit; stop
			break
		}
		curPlan, curSpills, curCC = p2, s2, cc2
		fusions++
	}

	res.FusedPlan = curPlan
	res.FusedCC = curCC
	res.SavedCC = res.UnfusedCC - res.FusedCC
	return res, nil
}

// Report renders the verdict.
func (r *Result) Report(layerNames []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fusion: %.0f cc -> %.0f cc (saved %.0f cc)\n", r.UnfusedCC, r.FusedCC, r.SavedCC)
	any := false
	for i, f := range r.Fused {
		if f && i < len(layerNames) {
			fmt.Fprintf(&b, "  fuse %s -> next (tile buffer %d KiB instead of full tensor)\n",
				layerNames[i], r.TileBits[i]/8192)
			any = true
		}
	}
	if !any {
		b.WriteString("  no fusion needed (or none helps)\n")
	}
	fmt.Fprintf(&b, "  GB spill: %d KiB -> %d KiB\n",
		r.UnfusedPlan.SpillBits/8192, r.FusedPlan.SpillBits/8192)
	return b.String()
}
