package fusion

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/network"
	"repro/internal/workload"
)

func bigActNet() *network.Network {
	// Wide spatial layers whose boundary activations dwarf a small GB.
	return &network.Network{
		Name: "bigact",
		Layers: []workload.Layer{
			workload.NewPointwise("pw1", 1, 64, 16, 28, 28),
			workload.NewPointwise("pw2", 1, 64, 64, 28, 28),
			workload.NewPointwise("pw3", 1, 32, 64, 28, 28),
		},
	}
}

func TestFusionEliminatesSpills(t *testing.T) {
	n := bigActNet()
	hw := arch.CaseStudy()
	// Shrink the GB so whole boundary activations (64*784*24b = 147 KiB)
	// cannot stay on chip.
	hw.MemoryByName("GB").CapacityBits = 100 * 1024 * 8
	r, err := Optimize(n, hw, arch.CaseStudySpatial(), &Options{MaxCandidates: 800})
	if err != nil {
		t.Fatal(err)
	}
	if r.UnfusedPlan.SpillBits == 0 {
		t.Fatal("test premise broken: no spills without fusion")
	}
	fusedAny := false
	for _, f := range r.Fused {
		if f {
			fusedAny = true
		}
	}
	if !fusedAny {
		t.Fatal("optimizer fused nothing despite spills")
	}
	if r.FusedPlan.SpillBits >= r.UnfusedPlan.SpillBits {
		t.Errorf("fusion did not reduce spills: %d -> %d",
			r.UnfusedPlan.SpillBits, r.FusedPlan.SpillBits)
	}
	if r.SavedCC <= 0 {
		t.Errorf("fusion saved no latency: %+v", r)
	}
	if r.FusedCC+r.SavedCC != r.UnfusedCC {
		t.Error("savings accounting inconsistent")
	}
	names := []string{"pw1", "pw2", "pw3"}
	rep := r.Report(names)
	if !strings.Contains(rep, "fuse") || !strings.Contains(rep, "saved") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestFusionNoOpWithBigGB(t *testing.T) {
	n := bigActNet()
	hw := arch.CaseStudy()
	hw.MemoryByName("GB").CapacityBits = 1 << 28
	r, err := Optimize(n, hw, arch.CaseStudySpatial(), &Options{MaxCandidates: 800})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range r.Fused {
		if f {
			t.Errorf("boundary %d fused without need", i)
		}
	}
	if r.SavedCC != 0 {
		t.Errorf("phantom savings %v", r.SavedCC)
	}
	if !strings.Contains(r.Report([]string{"a", "b", "c"}), "no fusion needed") {
		t.Error("no-op not reported")
	}
}

func TestFusionBudget(t *testing.T) {
	n := bigActNet()
	hw := arch.CaseStudy()
	hw.MemoryByName("GB").CapacityBits = 60 * 1024 * 8
	r, err := Optimize(n, hw, arch.CaseStudySpatial(), &Options{MaxCandidates: 800, MaxFusions: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, f := range r.Fused {
		if f {
			count++
		}
	}
	if count > 1 {
		t.Errorf("fusion budget exceeded: %d", count)
	}
}

func TestFusionTileMuchSmallerThanTensor(t *testing.T) {
	n := bigActNet()
	hw := arch.CaseStudy()
	hw.MemoryByName("GB").CapacityBits = 100 * 1024 * 8
	r, err := Optimize(n, hw, arch.CaseStudySpatial(), &Options{MaxCandidates: 800})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range r.Fused {
		if !f {
			continue
		}
		lowered := workload.Im2Col(n.Layers[i])
		full := lowered.OperandBits(loops.O)
		if r.TileBits[i]*4 > full {
			t.Errorf("boundary %d tile %d not much smaller than tensor %d",
				i, r.TileBits[i], full)
		}
	}
}

func TestFusionErrors(t *testing.T) {
	if _, err := Optimize(&network.Network{Name: "e"}, arch.CaseStudy(), arch.CaseStudySpatial(), nil); err == nil {
		t.Error("empty network optimized")
	}
}
